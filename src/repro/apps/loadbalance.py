"""Load balancing with process migration (section 8).

"CPU bound jobs can be moved from busy nodes of the network to others
that are idle ... Candidates for migration can be best selected from
the processes that have been running for more than a certain amount
of time.  This will ensure that there is a high probability that the
candidate program will keep running for some time, and that it is
worth paying the overhead of moving it to another machine."

The paper also notes that "the migrate application may be too slow in
terms of real time response and a more efficient one would have to be
written" — so the balancer drives ``dumpproc``/``restart`` directly on
the machines involved (the shape a daemon-based implementation would
have), not the rsh-based ``migrate``.

The *selection* rules live in :mod:`repro.apps.policy` as pure
functions over a load view; this module supplies the measurement (it
inspects kernels directly — the embedder's shortcut) and the
execution.  The in-simulation daemon doing the same job over the
virtual network is ``loadd`` (:mod:`repro.programs.loadd`).
"""

from repro.apps.policy import HostLoad, ThresholdPolicy


class LoadBalancerPolicy(ThresholdPolicy):
    """Tunable selection rules (the original busiest-vs-idlest API).

    Kept as the balancer's default policy type; any policy from
    :mod:`repro.apps.policy` may be passed to :class:`LoadBalancer`
    instead.
    """


class Migration:
    """A record of one balancing move."""

    def __init__(self, pid, source, destination, new_proc):
        self.pid = pid
        self.source = source
        self.destination = destination
        self.new_proc = new_proc

    def __repr__(self):
        return ("Migration(pid %d: %s -> %s, now pid %d)"
                % (self.pid, self.source, self.destination,
                   self.new_proc.pid))


class LoadBalancer:
    """Even out runnable VM jobs across the cluster's workstations."""

    def __init__(self, site, hosts, uid=100,
                 policy=None):
        self.site = site
        self.hosts = list(hosts)
        self.uid = uid
        self.policy = policy or LoadBalancerPolicy()
        self.history = []

    # -- measurement --------------------------------------------------------

    def load_of(self, host):
        """Runnable/queued VM processes on ``host`` (the load metric)."""
        kernel = self.site.machine(host).kernel
        return sum(1 for p in kernel.procs.all_procs()
                   if p.is_vm() and not p.zombie())

    def loads(self):
        return {host: self.load_of(host) for host in self.hosts}

    def candidates(self, host):
        """Migration-eligible jobs on ``host``, oldest CPU first."""
        kernel = self.site.machine(host).kernel
        jobs = [p for p in kernel.procs.all_procs()
                if p.is_vm() and not p.zombie()
                and p.cpu_us() / 1e6 >= self.policy.min_cpu_seconds]
        return sorted(jobs, key=lambda p: -p.cpu_us())

    def view(self):
        """The policy-engine load view, in configured host order."""
        view = {}
        for host in self.hosts:
            kernel = self.site.machine(host).kernel
            jobs = [(p.pid, p.cpu_us() / 1e6)
                    for p in kernel.procs.all_procs()
                    if p.is_vm() and not p.zombie()]
            view[host] = HostLoad(host=host, runnable=len(jobs),
                                  candidates=tuple(jobs))
        return view

    # -- balancing ------------------------------------------------------------------

    def step(self):
        """One balancing round; returns the migrations performed."""
        moves = []
        for decision in self.policy.select(self.view()):
            moved = self.migrate(decision.pid, decision.source,
                                 decision.destination)
            if moved is None:
                break
            moves.append(moved)
        self.history.extend(moves)
        return moves

    def migrate(self, pid, source, destination):
        """dumpproc on ``source``, restart on ``destination``."""
        from repro.core.api import CommandFailed
        site = self.site
        try:
            site.dumpproc(source, pid, uid=self.uid)
        except CommandFailed:
            return None
        handle = site.restart(destination, pid, from_host=source,
                              uid=self.uid)
        if handle.exited or not handle.proc.is_vm():
            return None
        return Migration(pid, source, destination, handle.proc)

    def run(self, rounds, settle_us=2_000_000):
        """Balance repeatedly, letting the cluster run in between."""
        for __ in range(rounds):
            self.step()
            self.site.run(
                until_us=self.site.cluster.wall_time_us() + settle_us)
        return self.history
