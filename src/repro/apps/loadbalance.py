"""Load balancing with process migration (section 8).

"CPU bound jobs can be moved from busy nodes of the network to others
that are idle ... Candidates for migration can be best selected from
the processes that have been running for more than a certain amount
of time.  This will ensure that there is a high probability that the
candidate program will keep running for some time, and that it is
worth paying the overhead of moving it to another machine."

The paper also notes that "the migrate application may be too slow in
terms of real time response and a more efficient one would have to be
written" — so the balancer drives ``dumpproc``/``restart`` directly on
the machines involved (the shape a daemon-based implementation would
have), not the rsh-based ``migrate``.
"""


class LoadBalancerPolicy:
    """Tunable selection rules."""

    def __init__(self, min_cpu_seconds=0.5, imbalance_threshold=2,
                 max_moves_per_round=1):
        #: candidates must have consumed at least this much CPU (the
        #: paper's "running for more than a certain amount of time")
        self.min_cpu_seconds = min_cpu_seconds
        #: move only if busiest - idlest >= this many runnable jobs
        self.imbalance_threshold = imbalance_threshold
        self.max_moves_per_round = max_moves_per_round


class Migration:
    """A record of one balancing move."""

    def __init__(self, pid, source, destination, new_proc):
        self.pid = pid
        self.source = source
        self.destination = destination
        self.new_proc = new_proc

    def __repr__(self):
        return ("Migration(pid %d: %s -> %s, now pid %d)"
                % (self.pid, self.source, self.destination,
                   self.new_proc.pid))


class LoadBalancer:
    """Even out runnable VM jobs across the cluster's workstations."""

    def __init__(self, site, hosts, uid=100,
                 policy=None):
        self.site = site
        self.hosts = list(hosts)
        self.uid = uid
        self.policy = policy or LoadBalancerPolicy()
        self.history = []

    # -- measurement --------------------------------------------------------

    def load_of(self, host):
        """Runnable/queued VM processes on ``host`` (the load metric)."""
        kernel = self.site.machine(host).kernel
        return sum(1 for p in kernel.procs.all_procs()
                   if p.is_vm() and not p.zombie())

    def loads(self):
        return {host: self.load_of(host) for host in self.hosts}

    def candidates(self, host):
        """Migration-eligible jobs on ``host``, oldest CPU first."""
        kernel = self.site.machine(host).kernel
        jobs = [p for p in kernel.procs.all_procs()
                if p.is_vm() and not p.zombie()
                and p.cpu_us() / 1e6 >= self.policy.min_cpu_seconds]
        return sorted(jobs, key=lambda p: -p.cpu_us())

    # -- balancing ------------------------------------------------------------------

    def step(self):
        """One balancing round; returns the migrations performed."""
        moves = []
        for __ in range(self.policy.max_moves_per_round):
            loads = self.loads()
            busiest = max(self.hosts, key=lambda h: loads[h])
            idlest = min(self.hosts, key=lambda h: loads[h])
            if loads[busiest] - loads[idlest] < \
                    self.policy.imbalance_threshold:
                break
            pool = self.candidates(busiest)
            if not pool:
                break
            victim = pool[0]
            moved = self.migrate(victim.pid, busiest, idlest)
            if moved is None:
                break
            moves.append(moved)
        self.history.extend(moves)
        return moves

    def migrate(self, pid, source, destination):
        """dumpproc on ``source``, restart on ``destination``."""
        from repro.core.api import CommandFailed
        site = self.site
        try:
            site.dumpproc(source, pid, uid=self.uid)
        except CommandFailed:
            return None
        handle = site.restart(destination, pid, from_host=source,
                              uid=self.uid)
        if handle.exited or not handle.proc.is_vm():
            return None
        return Migration(pid, source, destination, handle.proc)

    def run(self, rounds, settle_us=2_000_000):
        """Balance repeatedly, letting the cluster run in between."""
        for __ in range(rounds):
            self.step()
            self.site.run(
                until_us=self.site.cluster.wall_time_us() + settle_us)
        return self.history
