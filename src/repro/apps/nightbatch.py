"""The day/night CPU-hog scheduler (section 8, last application).

"These jobs can be run in one machine during the day (or not at
all!), when users want to use the majority of the machines in the
network.  At night, when the load on most machines is low, these jobs
can be distributed evenly throughout the system, and thus make
efficient use of the network resources."

The scheduler owns a set of long-running batch jobs.  ``nightfall()``
spreads them round-robin over every workstation; ``daybreak()``
corrals them back onto the designated day machine.  Each move is a
dump/restart, so a job's identity changes pid at every transition —
the scheduler tracks jobs by handle, not pid.
"""


class BatchJob:
    """One long-running CPU hog under the scheduler's care."""

    _ids = iter(range(1, 1 << 20))

    def __init__(self, proc, host):
        self.job_id = next(BatchJob._ids)
        self.proc = proc
        self.host = host
        self.moves = 0

    @property
    def alive(self):
        return not self.proc.zombie()

    def __repr__(self):
        return ("BatchJob(#%d pid %d on %s, %d moves)"
                % (self.job_id, self.proc.pid, self.host, self.moves))


class NightBatchScheduler:
    """Corral by day, spread by night."""

    def __init__(self, site, day_host, night_hosts, uid=100):
        self.site = site
        self.day_host = day_host
        self.night_hosts = list(night_hosts)
        self.uid = uid
        self.jobs = []
        self.is_night = False

    def submit(self, path, argv=None, cwd="/tmp"):
        """Start a batch job on the day machine."""
        handle = self.site.start(self.day_host, path, argv,
                                 uid=self.uid, cwd=cwd)
        job = BatchJob(handle.proc, self.day_host)
        self.jobs.append(job)
        return job

    def _move(self, job, destination):
        if job.host == destination or job.proc.zombie():
            return False
        site = self.site
        from repro.core.api import CommandFailed
        try:
            site.dumpproc(job.host, job.proc.pid, uid=self.uid)
        except CommandFailed:
            return False
        handle = site.restart(destination, job.proc.pid,
                              from_host=job.host, uid=self.uid)
        if handle.exited:
            return False
        job.proc = handle.proc
        job.host = destination
        job.moves += 1
        return True

    def live_jobs(self):
        return [job for job in self.jobs if not job.proc.zombie()]

    def nightfall(self):
        """Spread the hogs evenly over the night machines."""
        self.is_night = True
        moved = 0
        for index, job in enumerate(self.live_jobs()):
            target = self.night_hosts[index % len(self.night_hosts)]
            if self._move(job, target):
                moved += 1
        return moved

    def daybreak(self):
        """Bring every hog home to the day machine."""
        self.is_night = False
        moved = 0
        for job in self.live_jobs():
            if self._move(job, self.day_host):
                moved += 1
        return moved

    def placement(self):
        """host -> number of live jobs there."""
        out = {}
        for job in self.live_jobs():
            out[job.host] = out.get(job.host, 0) + 1
        return out
