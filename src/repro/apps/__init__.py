"""Applications built on the migration mechanism (section 8).

* :mod:`repro.apps.checkpoint` — periodic process checkpointing with
  open-file snapshots and restore-to-the-n-th-checkpoint;
* :mod:`repro.apps.loadbalance` — a load balancer moving CPU-bound
  jobs from busy machines to idle ones;
* :mod:`repro.apps.policy` — the pure selection policies shared by
  the balancer and the in-simulation ``loadd`` daemon;
* :mod:`repro.apps.nightbatch` — the day/night CPU-hog scheduler:
  corral the hogs onto one machine during the day, spread them across
  the idle network at night.

All three drive the system exactly the way a user-level application
would have: by running the ``dumpproc``/``restart`` commands and
inspecting the process table via syscalls, never by reaching into
kernel structures.
"""

from repro.apps.checkpoint import CheckpointManager
from repro.apps.loadbalance import LoadBalancer, LoadBalancerPolicy
from repro.apps.nightbatch import NightBatchScheduler
from repro.apps.policy import (HostLoad, Move, ThresholdPolicy,
                               WatermarkPolicy, WorkStealingPolicy,
                               make_policy)

__all__ = ["CheckpointManager", "LoadBalancer", "LoadBalancerPolicy",
           "NightBatchScheduler", "HostLoad", "Move",
           "ThresholdPolicy", "WatermarkPolicy",
           "WorkStealingPolicy", "make_policy"]
