"""Pluggable load-balancing policies (section 8, DESIGN.md §11).

A policy is a *pure function* from a load view to a list of moves:

* the **view** is a mapping ``host -> HostLoad`` (runnable VM jobs
  plus migration candidates with their CPU seconds) — however it was
  obtained: :class:`~repro.apps.loadbalance.LoadBalancer` inspects
  kernels directly, the ``loadd`` daemon assembles it from spooled
  ``LOADREPORT`` datagrams;
* ``select(view)`` returns :class:`Move` decisions.  It never
  mutates the view, never consults a clock or an RNG, and calling it
  twice on the same view returns the same decisions — the property
  tests in ``tests/test_loadd.py`` hold every policy to this.

Shared invariants, enforced in the base class loop:

* never more than ``max_moves_per_round`` moves;
* a move's source has at least one eligible candidate (so never an
  idle host) and its destination is a different host in the view;
* candidates must have consumed ``min_cpu_seconds`` of CPU (the
  paper's "running for more than a certain amount of time");
* a move must strictly reduce the source/destination spread
  (source − destination >= 2 after simulating earlier moves), so
  equally-busy or off-by-one hosts never churn jobs back and forth —
  even with ``imbalance_threshold=0``.

Ties (equally busy or equally idle hosts) break toward the host
listed *first in the view* — views are built in a deterministic host
order, so decisions are reproducible across runs and engines.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class HostLoad:
    """One host's entry in a load view."""

    host: str
    runnable: int  #: runnable (non-zombie) VM jobs
    candidates: tuple = ()  #: ``(pid, cpu_seconds)``, any order


@dataclass(frozen=True)
class Move:
    """One balancing decision: move ``pid`` source -> destination."""

    pid: int
    source: str
    destination: str


#: a move must leave the source at least as loaded as the
#: destination; spread 1 would just trade places, so require 2
_MIN_USEFUL_SPREAD = 2


class BalancePolicy:
    """Base class: the candidate filter and the selection loop."""

    def __init__(self, min_cpu_seconds=0.5, max_moves_per_round=1):
        self.min_cpu_seconds = min_cpu_seconds
        self.max_moves_per_round = max_moves_per_round

    # -- the pure selection entry point --------------------------------------

    def select(self, view):
        """Return the moves this policy makes for ``view`` (pure)."""
        runnable = {host: view[host].runnable for host in view}
        pools = self._pools(view)
        moves = []
        for __ in range(max(0, self.max_moves_per_round)):
            pair = self._pick(runnable, pools)
            if pair is None:
                break
            source, destination = pair
            pid, __cpu = pools[source].pop(0)
            moves.append(Move(pid, source, destination))
            runnable[source] -= 1
            runnable[destination] += 1
        return moves

    # -- subclass hook -------------------------------------------------------

    def _pick(self, runnable, pools):
        """Choose ``(source, destination)`` or None to stop.

        ``runnable`` reflects the moves already simulated this round;
        ``pools`` holds each host's remaining eligible candidates,
        busiest first.
        """
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------

    def _pools(self, view):
        """Eligible candidates per host, most CPU first."""
        pools = {}
        for host, entry in view.items():
            eligible = [c for c in entry.candidates
                        if c[1] >= self.min_cpu_seconds]
            pools[host] = sorted(eligible,
                                 key=lambda c: (-c[1], c[0]))
        return pools

    @staticmethod
    def _busiest(runnable, pools, floor=_MIN_USEFUL_SPREAD):
        """The most loaded host that still has candidates, or None."""
        best = None
        for host in runnable:
            if not pools[host] or runnable[host] < floor:
                continue
            if best is None or runnable[host] > runnable[best]:
                best = host
        return best

    @staticmethod
    def _idlest(runnable, exclude=()):
        best = None
        for host in runnable:
            if host in exclude:
                continue
            if best is None or runnable[host] < runnable[best]:
                best = host
        return best


class ThresholdPolicy(BalancePolicy):
    """The classic busiest-vs-idlest rule (the original balancer).

    Move from the busiest host to the idlest only while their spread
    is at least ``imbalance_threshold`` runnable jobs (and at least
    2, so the move is a strict improvement).
    """

    def __init__(self, min_cpu_seconds=0.5, imbalance_threshold=2,
                 max_moves_per_round=1):
        super().__init__(min_cpu_seconds=min_cpu_seconds,
                         max_moves_per_round=max_moves_per_round)
        self.imbalance_threshold = imbalance_threshold

    def _pick(self, runnable, pools):
        if not runnable:
            return None
        busiest = max(runnable, key=lambda h: runnable[h])
        idlest = min(runnable, key=lambda h: runnable[h])
        spread = runnable[busiest] - runnable[idlest]
        if spread < max(self.imbalance_threshold,
                        _MIN_USEFUL_SPREAD):
            return None
        if not pools[busiest]:
            return None
        return busiest, idlest


class WatermarkPolicy(BalancePolicy):
    """High/low watermark: only clearly-busy hosts shed jobs, only
    clearly-idle hosts take them.

    A host with more than ``high_watermark`` runnable jobs is a
    sender; one with fewer than ``low_watermark`` is a receiver.
    Hosts between the marks are left alone entirely — the band damps
    the oscillation a plain threshold rule shows under load that
    hovers around the trigger point.
    """

    def __init__(self, high_watermark=2, low_watermark=1,
                 min_cpu_seconds=0.5, max_moves_per_round=1):
        super().__init__(min_cpu_seconds=min_cpu_seconds,
                         max_moves_per_round=max_moves_per_round)
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark

    def _pick(self, runnable, pools):
        senders = {h: n for h, n in runnable.items()
                   if n > self.high_watermark and pools[h]}
        receivers = {h: n for h, n in runnable.items()
                     if n < self.low_watermark}
        if not senders or not receivers:
            return None
        source = max(senders, key=lambda h: senders[h])
        destination = min(receivers, key=lambda h: receivers[h])
        if source == destination or (runnable[source]
                                     - runnable[destination]
                                     < _MIN_USEFUL_SPREAD):
            return None
        return source, destination


class WorkStealingPolicy(BalancePolicy):
    """Sender-initiated work stealing: every *idle* host gets one job
    from the currently-busiest host that can spare one.

    Unlike the threshold rule this policy only ever feeds hosts with
    zero runnable jobs — it drains a hot spot into genuinely empty
    machines and otherwise stays out of the way.
    """

    def _pick(self, runnable, pools):
        idle = [h for h, n in runnable.items() if n == 0]
        if not idle:
            return None
        source = self._busiest(runnable, pools)
        if source is None:
            return None
        return source, idle[0]


#: registry for ``loadd -P <name>`` / the ``loadd_policy`` knob
POLICIES = {
    "threshold": ThresholdPolicy,
    "watermark": WatermarkPolicy,
    "stealing": WorkStealingPolicy,
}


def make_policy(name, **knobs):
    """Instantiate a registered policy; raises ValueError on unknown
    names or knobs the policy does not take."""
    if name not in POLICIES:
        raise ValueError("unknown balance policy %r" % (name,))
    try:
        return POLICIES[name](**knobs)
    except TypeError as exc:
        raise ValueError("policy %s: %s" % (name, exc))
