"""The calibrated cost model that turns simulated work into virtual time.

Every quantity is in **virtual microseconds**.  The simulator charges
time *where the work happens* (per instruction executed, per byte
copied, per disk block written, per network round trip) rather than
hard-coding end-to-end results, so the figures in the paper's
evaluation section are produced by measurement, not by fiat.

Calibration anchors (see DESIGN.md section 5):

* a Sun-2 executes roughly half a million instructions per second;
* 4.2BSD-era system calls cost on the order of 100 microseconds of
  fixed overhead before doing any work;
* NFS version 2 writes are synchronous and notoriously slow (tens of
  milliseconds per operation);
* establishing an ``rsh`` connection (rexec protocol, reverse host
  lookup, password file scan, remote shell startup) takes seconds.

The two headline anchors from the paper that the defaults reproduce:
killing the section 6.2 test program with SIGDUMP takes about 0.6
seconds of real time, and exec'ing it takes under 0.2 seconds.
"""

from dataclasses import dataclass, field, fields, replace


@dataclass
class CostModel:
    """Tunable virtual-time costs, in microseconds unless noted."""

    # --- CPU ----------------------------------------------------------
    instruction_us: float = 2.0  #: one VM instruction (~0.5 MIPS)
    syscall_base_us: float = 110.0  #: trap + dispatch + return overhead
    context_switch_us: float = 400.0  #: scheduler switch between procs
    signal_post_us: float = 60.0  #: posting a signal to a proc
    signal_deliver_us: float = 250.0  #: building/tearing a signal frame
    native_step_us: float = 150.0  #: user-level work between two
    #: syscalls of a native (Python-coded) program; stands in for the
    #: instructions a real implementation of that tool would execute.

    # --- memory -------------------------------------------------------
    copy_byte_us: float = 0.004  #: bulk memory copy, per byte
    zero_byte_us: float = 0.002  #: bss/stack zeroing, per byte
    kmem_alloc_us: float = 35.0  #: kernel memory allocator, one call
    kmem_free_us: float = 22.0  #: kernel memory free, one call
    kstring_byte_us: float = 11.0  #: kernel path-string handling per
    #: byte: character-at-a-time copyin from user space with bounds
    #: checks, then copy into the kernel-held name — roughly six
    #: instructions per character on a 0.5 MIPS machine.  This is the
    #: dominant cost of the paper's name-tracking modification and the
    #: knob that calibrates Figure 1's ~40 % overhead.

    # --- filesystem ---------------------------------------------------
    namei_component_us: float = 180.0  #: one path component, local
    inode_op_us: float = 120.0  #: allocate/update/release an inode
    filetable_op_us: float = 60.0  #: file-table slot bookkeeping
    disk_read_block_us: float = 6000.0  #: read one block (cache helps)
    disk_write_block_us: float = 5000.0  #: write one data block
    disk_create_us: float = 190_000.0  #: create/remove/truncate an
    #: entry: the old filesystem wrote the directory block and the
    #: inode *synchronously*, several full seek+rotate rounds on a
    #: Sun-2 era disk.  Per-file overhead dominating per-byte cost is
    #: what makes SIGDUMP (three files) ≈ 3x SIGQUIT (one file) in
    #: Figure 2.
    disk_byte_us: float = 1.6  #: local disk transfer per byte
    disk_block_bytes: int = 1024  #: I/O is charged per block
    disk_cpu_per_block_us: float = 450.0  #: CPU part of one block I/O
    #: (buffer cache + driver work); the rest of the I/O time is the
    #: process *waiting*, which counts as real time but not CPU time —
    #: the split behind Figure 2/3's CPU-vs-real gaps.
    nfs_cpu_per_op_us: float = 450.0  #: CPU part of one NFS RPC
    dump_pack_us: float = 2300.0  #: CPU to format kernel structures
    #: into one dump file (name strings, register blocks, headers)

    # --- NFS / network ------------------------------------------------
    net_rtt_us: float = 4500.0  #: one Ethernet round trip incl. RPC
    net_byte_us: float = 0.9  #: 10 Mbit/s shared Ethernet, per byte
    nfs_lookup_us: float = 5200.0  #: one remote path component (RPC)
    nfs_read_block_us: float = 9000.0  #: read one block over NFS
    nfs_write_block_us: float = 22000.0  #: NFSv2 synchronous write
    nfs_meta_op_us: float = 215_000.0  #: create/remove/setattr RPC:
    #: the server performs the same synchronous create, plus the wire

    # --- rsh ----------------------------------------------------------
    rsh_setup_us: float = 8_800_000.0  #: rexec connection: reverse
    #: host lookup, privileged port dance, /etc/hosts.equiv scan,
    #: remote login-shell startup.  Calibrated so Figure 4's "almost
    #: half a minute" for a fully remote migrate holds.
    rsh_relay_byte_us: float = 2.5  #: relaying remote stdio per byte
    daemon_setup_us: float = 120_000.0  #: the paper's proposed
    #: daemon-with-a-well-known-port alternative: one connection to an
    #: already-running server (section 6.4, ablation A1).

    # --- incremental dumps / chunk store (DESIGN.md section 10) --------
    dump_chunk_bytes: int = 1024  #: chunk granularity of incremental
    #: dumps; rounded down to a whole number of dirty-tracking pages
    digest_byte_us: float = 0.006  #: content digest of one chunk byte:
    #: a cheap rolling checksum, a little slower than a plain copy
    #: (read + multiply-accumulate per byte on a 0.5 MIPS machine)

    # --- migration retry / timeout policy (not costs) ------------------
    #: knobs read by the hardened user commands via ``sysctl``; they
    #: shape retry behaviour, not virtual-time charging.
    migrate_attempts: int = 3  #: dump/restart attempts before giving up
    migrate_backoff_s: float = 2.0  #: backoff base between attempts
    connect_attempts: int = 3  #: migrationd-run connect attempts
    connect_backoff_s: float = 1.0  #: backoff base between connects
    net_read_timeout_s: float = 30.0  #: reply-read timeout (daemon run)
    restart_poll_tries: int = 60  #: migrate polls for the restart ack
    restart_poll_sleep_s: float = 0.5  #: sleep between ack polls
    dump_poll_tries: int = 10  #: dumpproc polls for the a.out file
    dump_poll_sleep_s: float = 1  #: sleep between dump polls (the
    #: integer default keeps virtual timestamps in the calibrated
    #: figures int-valued, exactly as the old hard-coded constant did)

    # --- host failure model (DESIGN.md section 8) -----------------------
    boot_s: float = 5.0  #: virtual seconds a reboot_host() takes
    connect_timeout_s: float = 10.0  #: connect() wait before ETIMEDOUT
    #: when the destination is unreachable (partitioned, not refused)
    hb_interval_s: float = 2.0  #: heartbeat probe period (virtual)
    hb_timeout_s: float = 5.0  #: silence before a peer is suspected
    hb_lease_s: float = 20.0  #: how long a status query keeps the
    #: heartbeat lane ticking; with no consumers the lane goes dormant
    #: so an idle cluster can still quiesce
    recovery_interval_s: float = 2.0  #: recoveryd scan period
    recovery_rounds: int = 10  #: recoveryd scans before exiting

    # --- migration intent ledger (DESIGN.md section 12, not costs) ------
    #: crash-atomic migrations: migrate writes an intent record to the
    #: shared ledger directory before SIGDUMP, the kernel archives the
    #: dump through the chunk store, and ``recoveryd -m`` sweeps stale
    #: in-flight records to exactly-once completion.  Opt-in: with the
    #: switch off (the default) no ledger syscall is ever issued, so
    #: default-mode figures and traces stay byte-identical.
    migration_ledger: bool = False
    #: the shared ledger directory; lives *outside* /tmp and /usr/tmp
    #: on purpose, so a file-server reboot cannot wipe the ledger
    migration_ledger_dir: str = "/n/brador/usr/spool/migledger"
    #: a record whose last phase write is older than this is fair game
    #: for the sweep even if its orchestrator is not (yet) suspected
    #: (an orchestrator *process* can die without taking its host
    #: down).  Must comfortably exceed the longest phase a healthy
    #: migrate can spend between advances — with default knobs that is
    #: the full restart retry budget, well under a minute
    ledger_stale_s: float = 120.0

    # --- loadd load balancing (DESIGN.md section 11, not costs) ---------
    #: policy knobs read by the loadd daemon via ``sysctl``.  All of
    #: them are inert until a loadd is actually spawned — the daemon
    #: is opt-in (``MigrationSite.start_loadd``), so default-mode
    #: runs, figures and traces are byte-identical with or without
    #: this section.
    loadd_interval_s: float = 5.0  #: seconds between balance rounds
    loadd_rounds: int = 10  #: balance rounds before loadd exits
    load_stale_s: float = 15.0  #: drop load reports older than this
    loadd_policy: str = "threshold"  #: threshold|watermark|stealing
    loadd_min_cpu_s: float = 0.5  #: candidate CPU-seconds floor
    loadd_imbalance: int = 2  #: threshold policy: spread to act on
    loadd_max_moves: int = 1  #: moves per host per balance round
    loadd_high_watermark: int = 2  #: watermark policy: shed above
    loadd_low_watermark: int = 1  #: watermark policy: feed below

    # --- statd cluster telemetry (DESIGN.md section 13, not costs) ------
    #: knobs read by the statd daemon via zero-cost ``sysctl0``.  The
    #: whole subsystem is doubly opt-in: the daemon is only spawned by
    #: ``MigrationSite.start_statd`` and exits immediately unless
    #: ``stat_interval_s`` is set positive, so default-mode runs,
    #: figures and traces are byte-identical with or without it.
    stat_interval_s: float = 0.0  #: seconds between samples (0 = off)
    stat_rounds: int = 10  #: sampling rounds before statd exits
    stat_stale_s: float = 30.0  #: spooled reports older than this are
    #: aged out by the spooler — a crashed peer disappears from migtop
    stat_series_len: int = 32  #: ring capacity per series (power of 2)
    #: where statd ships reports: a per-host directory on the file
    #: server, outside /tmp so a server reboot keeps the history
    stat_spool_dir: str = "/n/brador/usr/spool/statd"
    # --- SLO thresholds for the critical-path analyzer ------------------
    #: alert when the p95 end-to-end migration latency exceeds this
    slo_migrate_p95_us: float = 45_000_000.0
    #: alert when this many peers are currently suspected dead
    slo_hb_suspects: int = 1
    #: alert when an in-flight ledger record has gone unswept this long
    slo_ledger_sweep_age_s: float = 60.0

    # --- tty ----------------------------------------------------------
    tty_char_us: float = 90.0  #: per character through the tty queue
    tty_ioctl_us: float = 200.0  #: get/set terminal modes

    # --- process management -------------------------------------------
    fork_base_us: float = 2200.0  #: proc table + u-area duplication
    exec_base_us: float = 3000.0  #: exec bookkeeping besides I/O
    exit_base_us: float = 1500.0  #: process teardown
    quantum_us: float = 10000.0  #: scheduler time slice

    # --- feature switches (not costs) ----------------------------------
    #: kernel keeps cwd/file names (the paper's modification); turning
    #: this off gives the unmodified-kernel baseline of Figure 1.
    track_names: bool = True
    #: section 7's proposed extension: getpid()/gethostname() return
    #: pre-migration values for migrated processes (ablation A5).
    compat_migrated_ids: bool = False
    #: section 9's future work, explored (ablation A6): dumps record
    #: the port of bound/listening sockets and restart re-binds them,
    #: so a network *service* survives migration.  Connected sockets
    #: still degrade to /dev/null — resurrecting a live connection
    #: transparently is exactly what the paper judged hard.
    migrate_listening_sockets: bool = False
    #: ablation A7: a 4.3BSD-style name cache.  The paper's testbed
    #: ran 4.2-derived Sun 3.0; 4.3BSD (1986) added the namei cache
    #: that would have cut exactly the repeated-lookup cost restart's
    #: twenty open() calls pay.
    namei_cache: bool = False
    namei_cache_hit_us: float = 45.0  #: one cached path resolution
    #: incremental content-addressed dumps (DESIGN.md section 10): the
    #: a.out and stack dump files become chunk manifests and the chunk
    #: payloads go to the cluster-shared store, deduplicated by digest.
    incremental_dumps: bool = False
    #: lazy copy-on-reference restart: text and registers restore
    #: eagerly, data/stack chunks fault in on first touch, charged at
    #: access time instead of inside the freeze window.  Only takes
    #: effect for chunked (incremental) dumps.
    lazy_restart: bool = False

    def disk_io_us(self, nbytes, write=False):
        """Local-disk cost of transferring ``nbytes`` (>=1 block)."""
        blocks = max(1, -(-int(nbytes) // self.disk_block_bytes))
        per_block = self.disk_write_block_us if write \
            else self.disk_read_block_us
        return blocks * per_block + nbytes * self.disk_byte_us

    def nfs_io_us(self, nbytes, write=False):
        """NFS cost of transferring ``nbytes`` (per-block sync RPCs)."""
        blocks = max(1, -(-int(nbytes) // self.disk_block_bytes))
        per_block = self.nfs_write_block_us if write else self.nfs_read_block_us
        return blocks * per_block + nbytes * self.net_byte_us

    def message_us(self, nbytes):
        """One network message of ``nbytes`` payload, one way."""
        return self.net_rtt_us / 2.0 + nbytes * self.net_byte_us

    def with_overrides(self, **overrides):
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def describe(self):
        """Return ``name: value`` lines for documentation output."""
        lines = []
        for f in fields(self):
            lines.append("%s = %r" % (f.name, getattr(self, f.name)))
        return "\n".join(lines)


DEFAULT = CostModel()


def unmodified_kernel_model(base=None):
    """Cost model for the original (non-name-tracking) kernel."""
    return (base or DEFAULT).with_overrides(track_names=False)
