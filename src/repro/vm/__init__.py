"""A small Motorola-68k-flavoured virtual machine.

This package stands in for the Sun-2 (MC68010) and Sun-3 (MC68020)
processors of the paper's testbed.  It provides:

* :mod:`repro.vm.isa` — the instruction set and the two CPU models,
  where the 68020's instruction set is a strict superset of the
  68010's (the paper's one-way heterogeneity constraint);
* :mod:`repro.vm.image` — a process image: segmented memory plus the
  register file, i.e. exactly the state the migration mechanism must
  capture and restore;
* :mod:`repro.vm.aout` — the ``a.out`` executable format used both for
  programs on disk and for the ``a.outXXXXX`` dump file;
* :mod:`repro.vm.assembler` — a two-pass assembler so guest programs
  can be written as readable assembly source;
* :mod:`repro.vm.cpu` — the interpreter, with syscall traps and
  machine faults (illegal instruction, segmentation violation);
* :mod:`repro.vm.disasm` — a disassembler used by tests and debugging.
"""

from repro.vm.isa import MC68010, MC68020, cpu_model, Op, Mode
from repro.vm.image import ProcessImage, Registers, SegmentationFault
from repro.vm.aout import AOutHeader, build_aout, parse_aout, AOUT_MAGIC
from repro.vm.assembler import assemble, AssemblyError
from repro.vm.cpu import CPU, TrapStop, FaultStop, QuantumStop, HaltStop
from repro.vm.disasm import disassemble

__all__ = [
    "MC68010",
    "MC68020",
    "cpu_model",
    "Op",
    "Mode",
    "ProcessImage",
    "Registers",
    "SegmentationFault",
    "AOutHeader",
    "build_aout",
    "parse_aout",
    "AOUT_MAGIC",
    "assemble",
    "AssemblyError",
    "CPU",
    "TrapStop",
    "FaultStop",
    "QuantumStop",
    "HaltStop",
    "disassemble",
]
