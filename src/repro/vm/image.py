"""Process images: the machine state that migration captures.

A :class:`ProcessImage` is a flat, byte-addressable memory with the
classic Unix layout (text at ``TEXT_BASE``, data immediately after,
stack growing down from the top) plus a :class:`Registers` file.  The
``SIGDUMP`` dump and the ``rest_proc()`` restore operate directly on
these objects: the ``a.outXXXXX`` file carries the text and data
segments, the ``stackXXXXX`` file carries the stack bytes and the
registers.
"""

import struct

TEXT_BASE = 0x1000
DEFAULT_MEM_SIZE = 256 * 1024

#: granularity of dirty tracking and of copy-on-reference fill, in
#: bytes (one "page"); incremental dump chunks are whole pages
PAGE_SHIFT = 10
PAGE_BYTES = 1 << PAGE_SHIFT

_U32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit pattern as a signed integer."""
    value &= _U32
    return value - (1 << 32) if value & 0x80000000 else value


def to_unsigned(value):
    """Truncate a Python int to a 32-bit pattern."""
    return value & _U32


class SegmentationFault(Exception):
    """Access outside the process's memory."""

    def __init__(self, address, kind="access"):
        self.address = address
        self.kind = kind
        super().__init__("segmentation fault: %s at 0x%x" % (kind, address))


class Registers:
    """The register file: d0-d7, a0-a7 (a7 = sp), pc and flags."""

    FORMAT = struct.Struct("<8i8iII")  # d regs, a regs, pc, sr

    def __init__(self):
        self.d = [0] * 8
        self.a = [0] * 8
        self.pc = 0
        self.zf = False  # zero flag
        self.nf = False  # negative flag

    @property
    def sp(self):
        return self.a[7]

    @sp.setter
    def sp(self, value):
        self.a[7] = value

    @property
    def sr(self):
        """Status register encoding of the flags."""
        return (1 if self.zf else 0) | (2 if self.nf else 0)

    @sr.setter
    def sr(self, value):
        self.zf = bool(value & 1)
        self.nf = bool(value & 2)

    def set_flags(self, result):
        """Update Z/N from a signed 32-bit result."""
        result = to_signed(result)
        self.zf = result == 0
        self.nf = result < 0

    def clear(self):
        self.d = [0] * 8
        self.a = [0] * 8
        self.pc = 0
        self.zf = False
        self.nf = False

    def copy(self):
        other = Registers()
        other.load_from(self)
        return other

    def load_from(self, other):
        self.d = list(other.d)
        self.a = list(other.a)
        self.pc = other.pc
        self.zf = other.zf
        self.nf = other.nf

    def pack(self):
        """Serialize to the fixed binary layout used by stackXXXXX."""
        return self.FORMAT.pack(
            *[to_signed(v) for v in self.d],
            *[to_signed(v) for v in self.a],
            to_unsigned(self.pc),
            self.sr,
        )

    @classmethod
    def unpack(cls, blob, offset=0):
        values = cls.FORMAT.unpack_from(blob, offset)
        regs = cls()
        regs.d = [to_signed(v) for v in values[0:8]]
        regs.a = [to_signed(v) for v in values[8:16]]
        regs.pc = values[16]
        regs.sr = values[17]
        return regs

    def __eq__(self, other):
        if not isinstance(other, Registers):
            return NotImplemented
        return (self.d == other.d and self.a == other.a
                and self.pc == other.pc and self.sr == other.sr)

    def __repr__(self):
        return ("Registers(pc=0x%x sp=0x%x d=%s)"
                % (self.pc, self.sp, self.d))


class ProcessImage:
    """Memory plus registers for one VM process."""

    def __init__(self, mem_size=DEFAULT_MEM_SIZE):
        self.mem = bytearray(mem_size)
        self.regs = Registers()
        self.text_base = TEXT_BASE
        self.text_size = 0
        self.data_size = 0
        self.bss_size = 0
        self.brk = TEXT_BASE
        self.machine_id = 0  #: a.out machine id the image was built for
        self.entry = TEXT_BASE  #: original entry point (kept for dumps)
        #: bumped on any store into the text segment; the CPU keys its
        #: instruction-decode cache on it (self-modifying code works,
        #: it just flushes the cache)
        self.text_version = 0
        self._decode_cache = None
        #: one flag per page, set on every store (interpreter *and*
        #: predecoded blocks mark identically, so both engines agree);
        #: incremental dumps skip chunks whose pages are all clean
        self.dirty_pages = bytearray(
            (mem_size + PAGE_BYTES - 1) >> PAGE_SHIFT)
        #: manifests of the dump this image was restored from (or the
        #: chunked a.out it was exec'd from): region name ->
        #: ``(base, length, chunk_bytes, digests)``.  A re-dump reuses
        #: these digests for chunks whose pages stayed clean.
        self.chunk_baseline = None
        # -- copy-on-reference state (lazy restart) -----------------
        # pending chunks not yet faulted in: chunk id -> (start, size,
        # digest); a page -> {chunk ids} map routes the first touch of
        # any page to the chunks overlapping it.  _lazy is None when
        # nothing is pending — the common case every access checks.
        self._lazy = None
        self._lazy_pages = None
        self._lazy_fetch = None
        self._lazy_drained = None
        self._lazy_next_id = 0

    @property
    def mem_size(self):
        return len(self.mem)

    @property
    def stack_top(self):
        return len(self.mem)

    @property
    def data_base(self):
        return self.text_base + self.text_size

    @property
    def stack_size(self):
        """Bytes currently on the stack (top of memory down to sp)."""
        return self.stack_top - self.regs.sp

    # -- memory access (bounds checked) ---------------------------------

    def _check(self, address, nbytes):
        if address < 0 or address + nbytes > len(self.mem):
            raise SegmentationFault(address)
        if self._lazy is not None:
            self._lazy_touch(address, nbytes)

    def read_u8(self, address):
        self._check(address, 1)
        return self.mem[address]

    def _touch_text(self, address):
        if address < self.text_base + self.text_size:
            self.text_version += 1

    def write_u8(self, address, value):
        self._check(address, 1)
        self.mem[address] = value & 0xFF
        self.dirty_pages[address >> PAGE_SHIFT] = 1
        self._touch_text(address)

    def read_i32(self, address):
        self._check(address, 4)
        return to_signed(int.from_bytes(self.mem[address:address + 4],
                                        "little"))

    def write_i32(self, address, value):
        self._check(address, 4)
        self.mem[address:address + 4] = to_unsigned(value).to_bytes(
            4, "little")
        self.dirty_pages[address >> PAGE_SHIFT] = 1
        self.dirty_pages[(address + 3) >> PAGE_SHIFT] = 1
        self._touch_text(address)

    def read_bytes(self, address, nbytes):
        self._check(address, nbytes)
        return bytes(self.mem[address:address + nbytes])

    def write_bytes(self, address, data):
        self._check(address, len(data))
        self.mem[address:address + len(data)] = data
        if data:
            first = address >> PAGE_SHIFT
            last = (address + len(data) - 1) >> PAGE_SHIFT
            self.dirty_pages[first:last + 1] = b"\x01" * (last - first + 1)
        self._touch_text(address)

    def read_cstring(self, address, limit=4096):
        """Read a NUL-terminated string from guest memory."""
        end = address
        lazy = self._lazy is not None
        while end < len(self.mem) and end - address < limit:
            if lazy:
                self._lazy_touch(end, 1)
                lazy = self._lazy is not None
            if self.mem[end] == 0:
                return bytes(self.mem[address:end]).decode(
                    "latin-1")
            end += 1
        raise SegmentationFault(address, "unterminated string")

    def clear_dirty(self):
        """Reset dirty tracking (after a restore installs a baseline)."""
        for i in range(len(self.dirty_pages)):
            self.dirty_pages[i] = 0

    def write_cstring(self, address, text):
        data = text.encode("latin-1") + b"\x00"
        self.write_bytes(address, data)
        return len(data)

    # -- copy-on-reference (lazy restart) ---------------------------------

    def add_lazy_chunks(self, records, fetch=None, on_drained=None):
        """Register pending copy-on-reference chunks.

        ``records`` is an iterable of ``(start, size, digest)``; the
        bytes stay un-materialised until the first access of any page
        a chunk overlaps, at which point ``fetch(digest, size)`` is
        called (charging whatever it charges *at access time*) and the
        chunk is filled in.  ``on_drained`` fires when the last
        pending chunk lands.  While anything is pending the CPU stays
        on the interpreter (which routes every access through
        :meth:`_check`); predecoded blocks resume once drained.
        """
        if fetch is not None:
            self._lazy_fetch = fetch
        if on_drained is not None:
            self._lazy_drained = on_drained
        for start, size, digest in records:
            if size <= 0:
                continue
            if self._lazy is None:
                self._lazy = {}
                self._lazy_pages = {}
            cid = self._lazy_next_id
            self._lazy_next_id += 1
            self._lazy[cid] = (start, size, digest)
            for page in range(start >> PAGE_SHIFT,
                              ((start + size - 1) >> PAGE_SHIFT) + 1):
                self._lazy_pages.setdefault(page, set()).add(cid)
        if self._lazy is None and self._lazy_drained is not None:
            callback = self._lazy_drained
            self._lazy_drained = None
            callback()

    def _lazy_touch(self, address, nbytes):
        """Fault in every pending chunk the access overlaps."""
        last = (address + max(nbytes, 1) - 1) >> PAGE_SHIFT
        page = address >> PAGE_SHIFT
        hit = set()
        while page <= last and self._lazy_pages is not None:
            cids = self._lazy_pages.get(page)
            if cids:
                hit.update(cids)
            page += 1
        for cid in sorted(hit):
            self._lazy_fill(cid)

    def _lazy_fill(self, cid):
        record = self._lazy.pop(cid, None) if self._lazy else None
        if record is None:
            return
        start, size, digest = record
        for page in range(start >> PAGE_SHIFT,
                          ((start + size - 1) >> PAGE_SHIFT) + 1):
            cids = self._lazy_pages.get(page)
            if cids:
                cids.discard(cid)
                if not cids:
                    del self._lazy_pages[page]
        try:
            blob = self._lazy_fetch(digest, size)
        except SegmentationFault:
            raise
        except Exception as err:
            # a missing/corrupt/unreachable chunk at access time is a
            # demand-paging failure: the process takes SIGSEGV (or the
            # syscall doing the copy fails with EFAULT), exactly like
            # a real pager losing its backing store
            raise SegmentationFault(
                start, "copy-on-reference fetch failed") from err
        if len(blob) != size:
            raise SegmentationFault(start, "short copy-on-reference chunk")
        # direct fill: not a guest store, so no dirty mark and no
        # text_version bump
        self.mem[start:start + size] = blob
        if not self._lazy:
            self._lazy = None
            self._lazy_pages = None
            callback = self._lazy_drained
            self._lazy_drained = None
            if callback is not None:
                callback()

    def drain_lazy(self):
        """Fault in everything still pending (fork, explicit flush)."""
        while self._lazy:
            self._lazy_fill(min(self._lazy))

    # -- decode-cache interface ------------------------------------------

    def invalidate_decode_cache(self):
        """Drop any predecoded instruction cache.

        The CPU keys its cache on ``text_version`` so ordinary text
        writes invalidate implicitly; this explicit hook is for
        whole-image transitions (exec overlays, ``rest_proc``) where
        the old cache must not survive into the new program.
        """
        self._decode_cache = None

    # -- stack helpers ---------------------------------------------------

    def push_i32(self, value):
        self.regs.sp -= 4
        self.write_i32(self.regs.sp, value)

    def pop_i32(self):
        value = self.read_i32(self.regs.sp)
        self.regs.sp += 4
        return value

    # -- segment snapshots (used by the dump machinery) -------------------

    def text_bytes(self):
        return self.read_bytes(self.text_base, self.text_size)

    def data_bytes(self):
        """The *current* data segment, including grown break space."""
        size = max(self.data_size + self.bss_size,
                   self.brk - self.data_base)
        return self.read_bytes(self.data_base, size)

    def stack_bytes(self):
        return self.read_bytes(self.regs.sp, self.stack_size)

    def restore_stack(self, blob):
        """Write ``blob`` back at the top of the stack and point sp at it."""
        sp = self.stack_top - len(blob)
        if sp < self.brk:
            raise SegmentationFault(sp, "stack overflow on restore")
        self.write_bytes(sp, blob)
        self.regs.sp = sp

    def copy(self):
        """Deep copy (used by fork())."""
        # fork wants a complete address space: materialise anything
        # still pending rather than teach the child lazy bookkeeping
        self.drain_lazy()
        other = ProcessImage(mem_size=0)
        other.mem = bytearray(self.mem)
        other.dirty_pages = bytearray(self.dirty_pages)
        other.chunk_baseline = dict(self.chunk_baseline) \
            if self.chunk_baseline is not None else None
        other.regs = self.regs.copy()
        other.text_base = self.text_base
        other.text_size = self.text_size
        other.data_size = self.data_size
        other.bss_size = self.bss_size
        other.brk = self.brk
        other.machine_id = self.machine_id
        other.entry = self.entry
        other.text_version = self.text_version
        other._decode_cache = self._decode_cache
        return other
