"""The ``a.out`` executable format.

The header mirrors the classic BSD ``exec`` structure: a magic number
(0407, OMAGIC — text and data loaded contiguously and writable), a
machine id identifying the CPU the program was built for, segment
sizes and the entry point.

The same format serves two purposes, exactly as in the paper:

* programs on disk are ``a.out`` files produced by the assembler;
* the ``a.outXXXXX`` file produced by ``SIGDUMP`` is a *runnable*
  ``a.out`` whose data segment holds the live values from the dumped
  process ("this gives us, incidentally, the undump utility for
  free").
"""

import struct

from repro.errors import UnixError, ENOEXEC

#: 0407 — OMAGIC, the old impure format
AOUT_MAGIC = 0o407

#: header flag bit: the file carries chunk *manifests* instead of the
#: raw text and data segments (incremental dumps, DESIGN.md section
#: 10).  The magic stays 0407 so a plain two-byte sniff — which is all
#: ``dumpproc`` and ``restart`` do before handing the file to the
#: kernel — accepts both layouts.
AOUT_FLAG_CHUNKED = 0x1

_HEADER = struct.Struct("<HHIIIIII")
HEADER_SIZE = _HEADER.size


class AOutHeader:
    """Parsed ``a.out`` header."""

    def __init__(self, machine_id, text_size, data_size, bss_size,
                 entry, sym_size=0, flags=0):
        self.magic = AOUT_MAGIC
        self.machine_id = machine_id
        self.text_size = text_size
        self.data_size = data_size
        self.bss_size = bss_size
        self.entry = entry
        self.sym_size = sym_size
        self.flags = flags

    def pack(self):
        return _HEADER.pack(self.magic, self.machine_id, self.text_size,
                            self.data_size, self.bss_size, self.entry,
                            self.sym_size, self.flags)

    @classmethod
    def unpack(cls, blob):
        if len(blob) < HEADER_SIZE:
            raise UnixError(ENOEXEC, "short a.out header")
        (magic, machine_id, text_size, data_size, bss_size, entry,
         sym_size, flags) = _HEADER.unpack_from(blob)
        if magic != AOUT_MAGIC:
            raise UnixError(ENOEXEC, "bad a.out magic 0o%o" % magic)
        header = cls(machine_id, text_size, data_size, bss_size, entry,
                     sym_size, flags)
        return header

    def __repr__(self):
        return ("AOutHeader(mid=%d text=%d data=%d bss=%d entry=0x%x)"
                % (self.machine_id, self.text_size, self.data_size,
                   self.bss_size, self.entry))


def build_aout(machine_id, text, data, bss_size=0, entry=None,
               text_base=0x1000):
    """Assemble header + segments into ``a.out`` file bytes."""
    if entry is None:
        entry = text_base
    header = AOutHeader(machine_id, len(text), len(data), bss_size, entry)
    return header.pack() + bytes(text) + bytes(data)


def parse_aout(blob):
    """Split ``a.out`` bytes into ``(header, text, data)``.

    Raises :class:`~repro.errors.UnixError` with ``ENOEXEC`` when the
    file is not a valid executable — the same error ``execve()``
    reports for garbage files.  Chunked files (``AOUT_FLAG_CHUNKED``)
    carry manifests, not segments; callers must split on the flag
    before parsing.
    """
    header = AOutHeader.unpack(blob)
    if header.flags & AOUT_FLAG_CHUNKED:
        raise UnixError(ENOEXEC, "chunked a.out has no inline segments")
    need = HEADER_SIZE + header.text_size + header.data_size
    if len(blob) < need:
        raise UnixError(ENOEXEC, "truncated a.out: %d < %d"
                        % (len(blob), need))
    text_start = HEADER_SIZE
    data_start = text_start + header.text_size
    text = bytes(blob[text_start:data_start])
    data = bytes(blob[data_start:data_start + header.data_size])
    return header, text, data
