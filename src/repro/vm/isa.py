"""Instruction set architecture of the simulated 68k-flavoured CPUs.

Instructions are a fixed ten bytes::

    byte 0      opcode
    byte 1      addressing modes (source in the low nibble,
                destination in the high nibble)
    bytes 2-5   source operand, little-endian signed 32-bit
    bytes 6-9   destination operand, little-endian signed 32-bit

Two CPU models are defined.  ``MC68010`` (the Sun-2 processor)
implements the base set; ``MC68020`` (the Sun-3) implements a strict
superset, adding ``MULL``, ``DIVL`` and ``BFEXT``.  A program that was
compiled for the 68020 and uses those instructions will take an
illegal-instruction fault on a 68010 — which is exactly the
heterogeneity limitation of section 7 of the paper.
"""

import struct


class Op:
    """Opcode numbers."""

    NOP = 0
    HALT = 1
    MOVE = 2
    MOVB = 3
    LEA = 4
    ADD = 5
    SUB = 6
    MUL = 7
    DIV = 8
    MOD = 9
    AND = 10
    OR = 11
    XOR = 12
    NOT = 13
    NEG = 14
    SHL = 15
    SHR = 16
    CMP = 17
    TST = 18
    BRA = 19
    BEQ = 20
    BNE = 21
    BLT = 22
    BLE = 23
    BGT = 24
    BGE = 25
    JSR = 26
    RTS = 27
    PUSH = 28
    POP = 29
    TRAP = 30
    # -- 68020-only extensions --
    MULL = 31
    DIVL = 32
    BFEXT = 33


class Mode:
    """Operand addressing modes."""

    IMM = 0  #: immediate value
    DREG = 1  #: data register d0-d7
    AREG = 2  #: address register a0-a7 (a7 is the stack pointer)
    ABS = 3  #: absolute memory address
    IND = 4  #: memory at (aN)
    IND_DISP = 5  #: memory at disp(aN); operand packs (disp << 3) | n


OP_NAMES = {
    value: name.lower()
    for name, value in vars(Op).items()
    if not name.startswith("_")
}

NAME_TO_OP = {name: value for value, name in OP_NAMES.items()}

#: opcodes that take no operands
ZERO_OPERAND = {Op.NOP, Op.HALT, Op.RTS, Op.TRAP}
#: opcodes that take exactly one operand (stored in the src slot,
#: except NOT/NEG/TST/POP which operate on a destination)
ONE_OPERAND_SRC = {Op.BRA, Op.BEQ, Op.BNE, Op.BLT, Op.BLE, Op.BGT,
                   Op.BGE, Op.JSR, Op.PUSH}
ONE_OPERAND_DST = {Op.NOT, Op.NEG, Op.TST, Op.POP}
#: everything else takes src, dst
TWO_OPERAND = {
    Op.MOVE, Op.MOVB, Op.LEA, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
    Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.CMP,
    Op.MULL, Op.DIVL, Op.BFEXT,
}

#: branch opcodes (target is an absolute address in the src slot)
BRANCHES = {Op.BRA, Op.BEQ, Op.BNE, Op.BLT, Op.BLE, Op.BGT, Op.BGE}

INSTRUCTION_SIZE = 10

_STRUCT = struct.Struct("<BBii")


def encode(opcode, src_mode=0, src=0, dst_mode=0, dst=0):
    """Encode one instruction to its ten-byte form."""
    modes = (src_mode & 0x0F) | ((dst_mode & 0x0F) << 4)
    return _STRUCT.pack(opcode, modes, src, dst)


def decode(blob, offset=0):
    """Decode the instruction at ``offset``.

    Returns ``(opcode, src_mode, src, dst_mode, dst)``.
    """
    opcode, modes, src, dst = _STRUCT.unpack_from(blob, offset)
    return opcode, modes & 0x0F, src, (modes >> 4) & 0x0F, dst


def pack_ind_disp(disp, reg):
    """Pack a displacement-plus-register operand for Mode.IND_DISP."""
    if not 0 <= reg <= 7:
        raise ValueError("address register out of range: %d" % reg)
    if not -(1 << 27) <= disp < (1 << 27):
        raise ValueError("displacement out of range: %d" % disp)
    return (disp << 3) | reg


def unpack_ind_disp(operand):
    """Inverse of :func:`pack_ind_disp`; returns ``(disp, reg)``."""
    return operand >> 3, operand & 0x7


class CpuModel:
    """A CPU model: a name, an a.out machine id, and an opcode set."""

    def __init__(self, name, machine_id, opcodes):
        self.name = name
        self.machine_id = machine_id
        self.opcodes = frozenset(opcodes)

    def supports(self, opcode):
        return opcode in self.opcodes

    def is_superset_of(self, other):
        """True if programs for ``other`` can run on this CPU."""
        return other.opcodes <= self.opcodes

    def __repr__(self):
        return "CpuModel(%s)" % self.name


_BASE_OPCODES = [op for op in OP_NAMES if op <= Op.TRAP]
_EXT_OPCODES = list(OP_NAMES)

MC68010 = CpuModel("mc68010", 1, _BASE_OPCODES)
MC68020 = CpuModel("mc68020", 2, _EXT_OPCODES)

_MODELS = {m.name: m for m in (MC68010, MC68020)}
_MODELS_BY_ID = {m.machine_id: m for m in (MC68010, MC68020)}


def cpu_model(name_or_id):
    """Look up a CPU model by name (``"mc68010"``) or machine id."""
    if isinstance(name_or_id, CpuModel):
        return name_or_id
    if isinstance(name_or_id, int):
        try:
            return _MODELS_BY_ID[name_or_id]
        except KeyError:
            raise KeyError("unknown machine id %d" % name_or_id) from None
    try:
        return _MODELS[str(name_or_id).lower()]
    except KeyError:
        raise KeyError("unknown CPU model %r" % name_or_id) from None
