"""A two-pass assembler for the simulated CPU.

Guest programs (the paper's test program, the CPU hogs used by the
load balancer, the raw-mode screen editor, ...) are written in a small
assembly language and assembled into ``a.out`` executables.

Syntax overview::

    ; comment
    NAME = 42                  ; equate
            .text
    start:  move   #0, d2      ; immediate -> data register
    loop:   add    #1, d2
            move   d2, counter ; register -> absolute address
            cmp    #10, d2
            blt    loop
            move   #SYS_EXIT, d0
            trap
            .data
    counter: .word 0
    msg:    .asciz "hello\\n"
    buf:    .space 64

Operands:

``#expr``      immediate; ``expr`` may reference labels and equates
``d0``-``d7``  data registers
``a0``-``a7``  address registers (``sp`` = ``a7``, ``fp`` = ``a6``)
``expr``       absolute memory address
``(aN)``       indirect through an address register
``expr(aN)``   indirect with displacement

Branch and ``jsr`` targets are written bare (``bra loop``) and encoded
as absolute addresses; ``jsr (aN)`` gives computed calls.
"""

import re

from repro.vm import isa
from repro.vm.isa import Op, Mode
from repro.vm.image import TEXT_BASE
from repro.vm.aout import build_aout


class AssemblyError(Exception):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message, lineno=None):
        if lineno is not None:
            message = "line %d: %s" % (lineno, message)
        super().__init__(message)
        self.lineno = lineno


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_EQUATE_RE = re.compile(r"^([A-Za-z_][\w]*)\s*=\s*(.+)$")
_NUMBER_RE = re.compile(r"^-?(0[xX][0-9a-fA-F]+|0[oO][0-7]+|\d+)$")
_DREG_RE = re.compile(r"^d([0-7])$")
_AREG_RE = re.compile(r"^a([0-7])$")
_IND_RE = re.compile(r"^\(\s*(a[0-7]|sp|fp)\s*\)$")
_IND_DISP_RE = re.compile(r"^(.+)\(\s*(a[0-7]|sp|fp)\s*\)$")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", '"': '"', "'": "'", "e": "\x1b"}


def _parse_string(text, lineno):
    """Parse a double-quoted string literal with escapes."""
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblyError("expected string literal, got %r" % text, lineno)
    body = text[1:-1]
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AssemblyError("dangling escape in string", lineno)
            out.append(_ESCAPES.get(body[i], body[i]))
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def _split_operands(text):
    """Split an operand field on commas that are not inside quotes."""
    parts = []
    depth = 0
    current = []
    in_str = False
    for ch in text:
        if ch == '"':
            in_str = not in_str
        if ch == "," and not in_str and depth == 0:
            parts.append("".join(current).strip())
            current = []
            continue
        if ch == "(" and not in_str:
            depth += 1
        elif ch == ")" and not in_str:
            depth -= 1
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


class _Expr:
    """A deferred integer expression (evaluated in pass 2)."""

    _TOKEN_RE = re.compile(
        r"\s*(?:(0[xX][0-9a-fA-F]+|0[oO][0-7]+|\d+)|('(?:\\.|[^'])')"
        r"|([A-Za-z_.$][\w.$]*)|([+\-]))")

    def __init__(self, text, lineno):
        self.text = text.strip()
        self.lineno = lineno
        if not self.text:
            raise AssemblyError("empty expression", lineno)

    def evaluate(self, symbols):
        tokens = []
        pos = 0
        while pos < len(self.text):
            match = self._TOKEN_RE.match(self.text, pos)
            if not match or match.end() == pos:
                raise AssemblyError(
                    "bad expression %r" % self.text, self.lineno)
            number, char, symbol, operator = match.groups()
            if number is not None:
                tokens.append(int(number, 0))
            elif char is not None:
                body = char[1:-1]
                if body.startswith("\\"):
                    body = _ESCAPES.get(body[1], body[1])
                tokens.append(ord(body))
            elif symbol is not None:
                if symbol not in symbols:
                    raise AssemblyError(
                        "undefined symbol %r" % symbol, self.lineno)
                tokens.append(symbols[symbol])
            else:
                tokens.append(operator)
            pos = match.end()
        # evaluate left-to-right with unary +/- support
        value = None
        pending = None
        sign = 1
        for token in tokens:
            if isinstance(token, str):
                if pending is not None or value is None:
                    sign = -sign if token == "-" else sign
                else:
                    pending = token
            else:
                token = sign * token
                sign = 1
                if value is None:
                    value = token
                elif pending == "+":
                    value += token
                    pending = None
                elif pending == "-":
                    value -= token
                    pending = None
                else:
                    raise AssemblyError(
                        "missing operator in %r" % self.text, self.lineno)
        if value is None or pending is not None:
            raise AssemblyError(
                "incomplete expression %r" % self.text, self.lineno)
        return value


class _Operand:
    """A parsed operand: addressing mode plus a deferred value."""

    def __init__(self, mode, expr=None, reg=None, lineno=None):
        self.mode = mode
        self.expr = expr
        self.reg = reg
        self.lineno = lineno

    @classmethod
    def parse(cls, text, lineno):
        text = text.strip()
        if text.startswith("#"):
            return cls(Mode.IMM, _Expr(text[1:], lineno), lineno=lineno)
        if text == "sp":
            return cls(Mode.AREG, reg=7, lineno=lineno)
        if text == "fp":
            return cls(Mode.AREG, reg=6, lineno=lineno)
        match = _DREG_RE.match(text)
        if match:
            return cls(Mode.DREG, reg=int(match.group(1)), lineno=lineno)
        match = _AREG_RE.match(text)
        if match:
            return cls(Mode.AREG, reg=int(match.group(1)), lineno=lineno)
        match = _IND_RE.match(text)
        if match:
            return cls(Mode.IND, reg=_areg_number(match.group(1)),
                       lineno=lineno)
        match = _IND_DISP_RE.match(text)
        if match:
            return cls(Mode.IND_DISP, _Expr(match.group(1), lineno),
                       reg=_areg_number(match.group(2)), lineno=lineno)
        return cls(Mode.ABS, _Expr(text, lineno), lineno=lineno)

    def encode(self, symbols):
        """Return ``(mode, operand_value)``."""
        if self.mode in (Mode.DREG, Mode.AREG, Mode.IND):
            return self.mode, self.reg
        if self.mode == Mode.IND_DISP:
            disp = self.expr.evaluate(symbols)
            return self.mode, isa.pack_ind_disp(disp, self.reg)
        return self.mode, self.expr.evaluate(symbols)


def _areg_number(name):
    if name == "sp":
        return 7
    if name == "fp":
        return 6
    return int(name[1])


class _Instruction:
    def __init__(self, opcode, operands, lineno):
        self.opcode = opcode
        self.operands = operands
        self.lineno = lineno
        self.size = isa.INSTRUCTION_SIZE

    def encode(self, symbols):
        src_mode = dst_mode = 0
        src = dst = 0
        ops = self.operands
        if self.opcode in isa.ZERO_OPERAND:
            if ops:
                raise AssemblyError("%s takes no operands"
                                    % isa.OP_NAMES[self.opcode], self.lineno)
        elif self.opcode in isa.ONE_OPERAND_SRC:
            if len(ops) != 1:
                raise AssemblyError("%s takes one operand"
                                    % isa.OP_NAMES[self.opcode], self.lineno)
            src_mode, src = ops[0].encode(symbols)
        elif self.opcode in isa.ONE_OPERAND_DST:
            if len(ops) != 1:
                raise AssemblyError("%s takes one operand"
                                    % isa.OP_NAMES[self.opcode], self.lineno)
            dst_mode, dst = ops[0].encode(symbols)
        else:
            if len(ops) != 2:
                raise AssemblyError("%s takes two operands"
                                    % isa.OP_NAMES[self.opcode], self.lineno)
            src_mode, src = ops[0].encode(symbols)
            dst_mode, dst = ops[1].encode(symbols)
        return isa.encode(self.opcode, src_mode, src, dst_mode, dst)


class _Data:
    """A directive that emits bytes into the current section."""

    def __init__(self, kind, payload, lineno):
        self.kind = kind
        self.payload = payload
        self.lineno = lineno
        if kind == "bytes":
            self.size = len(payload)
        elif kind == "space":
            self.size = payload
        elif kind == "words":
            self.size = 4 * len(payload)
        elif kind == "bytevals":
            self.size = len(payload)
        else:
            raise AssemblyError("bad data kind %r" % kind, lineno)

    def encode(self, symbols):
        if self.kind == "bytes":
            return self.payload
        if self.kind == "space":
            return b"\x00" * self.payload
        if self.kind == "words":
            out = bytearray()
            for expr in self.payload:
                out += (expr.evaluate(symbols) & 0xFFFFFFFF).to_bytes(
                    4, "little")
            return bytes(out)
        out = bytearray()
        for expr in self.payload:
            out.append(expr.evaluate(symbols) & 0xFF)
        return bytes(out)


class Assembled:
    """The output of :func:`assemble`."""

    def __init__(self, aout, symbols, text, data, entry, machine_id):
        self.aout = aout  #: complete a.out file bytes
        self.symbols = symbols  #: label/equate -> value
        self.text = text  #: text segment bytes
        self.data = data  #: data segment bytes
        self.entry = entry
        self.machine_id = machine_id


def assemble(source, cpu="mc68010", text_base=TEXT_BASE):
    """Assemble ``source`` for the given CPU model.

    Returns an :class:`Assembled`.  Using an instruction the target
    CPU does not implement is an :class:`AssemblyError` — you cannot
    compile 68020 code "for" a 68010 (you *can* run the resulting
    binary on the wrong machine, which is how the paper's
    heterogeneity crash is reproduced).
    """
    model = isa.cpu_model(cpu)
    items = []  # (section, item)
    labels = []  # (name, section, offset, lineno)
    equates = {}
    section = "text"
    offsets = {"text": 0, "data": 0}

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        while True:
            stripped = line.strip()
            match = _LABEL_RE.match(stripped)
            if not match:
                break
            labels.append((match.group(1), section, offsets[section],
                           lineno))
            line = match.group(2)
        line = line.strip()
        if not line:
            continue

        match = _EQUATE_RE.match(line)
        if match and not line.startswith("."):
            equates[match.group(1)] = _Expr(match.group(2), lineno)
            continue

        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if directive == ".text":
                section = "text"
            elif directive == ".data":
                section = "data"
            elif directive in (".asciz", ".ascii"):
                text = _parse_string(rest, lineno)
                data = text.encode("latin-1")
                if directive == ".asciz":
                    data += b"\x00"
                item = _Data("bytes", data, lineno)
                items.append((section, item))
                offsets[section] += item.size
            elif directive == ".word":
                exprs = [_Expr(p, lineno) for p in _split_operands(rest)]
                item = _Data("words", exprs, lineno)
                items.append((section, item))
                offsets[section] += item.size
            elif directive == ".byte":
                exprs = [_Expr(p, lineno) for p in _split_operands(rest)]
                item = _Data("bytevals", exprs, lineno)
                items.append((section, item))
                offsets[section] += item.size
            elif directive == ".space":
                size = _Expr(rest, lineno).evaluate({})
                item = _Data("space", size, lineno)
                items.append((section, item))
                offsets[section] += item.size
            elif directive == ".align":
                boundary = _Expr(rest, lineno).evaluate({})
                pad = (-offsets[section]) % boundary
                if pad:
                    item = _Data("space", pad, lineno)
                    items.append((section, item))
                    offsets[section] += pad
            else:
                raise AssemblyError("unknown directive %s" % directive,
                                    lineno)
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in isa.NAME_TO_OP:
            raise AssemblyError("unknown instruction %r" % mnemonic, lineno)
        opcode = isa.NAME_TO_OP[mnemonic]
        if not model.supports(opcode):
            raise AssemblyError(
                "%s is not implemented by %s" % (mnemonic, model.name),
                lineno)
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [_Operand.parse(p, lineno)
                    for p in _split_operands(operand_text)]
        item = _Instruction(opcode, operands, lineno)
        items.append((section, item))
        offsets[section] += item.size

    text_size = offsets["text"]
    data_base = text_base + text_size

    symbols = {}
    for name, sect, offset, lineno in labels:
        if name in symbols:
            raise AssemblyError("duplicate label %r" % name, lineno)
        base = text_base if sect == "text" else data_base
        symbols[name] = base + offset
    # equates may reference labels and earlier equates
    for name, expr in equates.items():
        if name in symbols:
            raise AssemblyError("symbol %r defined twice" % name,
                                expr.lineno)
        symbols[name] = expr.evaluate(symbols)

    text = bytearray()
    data = bytearray()
    for sect, item in items:
        blob = item.encode(symbols)
        if sect == "text":
            text += blob
        else:
            data += blob

    entry = symbols.get("start", text_base)
    aout = build_aout(model.machine_id, bytes(text), bytes(data),
                      entry=entry, text_base=text_base)
    return Assembled(aout, symbols, bytes(text), bytes(data), entry,
                     model.machine_id)
