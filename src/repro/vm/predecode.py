"""Trace compiler for the CPU interpreter.

The text segment of a process image never changes between execs (and
``text_version`` tells us when it does), so instead of re-decoding and
re-dispatching every instruction through :meth:`CPU.run`'s if-chain,
we compile whole *traces* once: a trace is a small set of straight-line
blocks linked by their statically-known branch targets, emitted as one
Python function.  A trace function has the signature::

    trace(d, a, mem, dp, budget, zf, nf) -> (executed, next_pc, zf, nf, sig)

Three things make traces fast:

* **Block linking.**  A block that ends in a branch, ``jsr`` or
  fall-through whose target is another member block transfers control
  *inside* the generated function (``_pc = <head>; continue`` into a
  small dispatch loop) instead of returning to ``CPU._run``'s dict
  lookup.  A hot loop therefore executes entirely inside one Python
  frame.
* **In-trace register caching.**  Every ``d``/``a`` register the trace
  touches lives in a Python local (``rd0`` … ``ra7``) loaded once in
  the prologue; the registers the trace *writes* are spilled back to
  the register arrays at every exit (return or bail).  Because guards
  fire before the first mutation of their instruction, a spill at a
  bail point writes back exactly the committed pre-instruction values.
* **Budget checks per block, not per instruction.**  Each block is
  guarded once at its head (``if budget - _n < len: return``); the
  check that used to run before every instruction is gone.  When the
  remaining budget cannot cover even the entry block, the trace bails
  with zero progress and the reference interpreter single-steps the
  quantum tail — at most ``MAX_BLOCK_LEN - 1`` instructions — with
  exact legacy semantics.

``dp`` is the image's per-page dirty bitmap: every memory store marks
the page(s) it touches, exactly as the interpreter's ``write_u8`` /
``write_i32`` do, so incremental dumps see the same dirty set on both
engines.

``sig`` is one of the :data:`SIG_OK`/``TRAP``/``HALT``/``BAIL`` codes
below.  ``BAIL`` means the instruction at ``next_pc`` was *not*
executed and **no state was touched for it**: every guard (address out
of range, store into the text segment, divide by a runtime zero) fires
before the first mutation of its instruction, so the interpreter can
replay the instruction from scratch and produce the exact legacy
fault behaviour — partial-mutation order, fault pc, executed counts
and all.  That bail-before-mutate rule is what lets the fast path be
bit-identical to the reference interpreter.

Flag writes that can never be observed (overwritten before any branch,
bail point or trace exit reads them) are eliminated by a per-block
backward liveness pass; every observation point — conditional branch,
guarded instruction, transfer, return — is treated as a read, so the
architectural flags are always current whenever anyone can look.

Anything the compiler cannot prove safe (stores through unknown
addressing modes, instructions the CPU model faults on, constant
divides by zero, ``lea`` to a non-address register) simply terminates
the block; the interpreter handles the next instruction.  Program
counters outside the text segment get the :data:`INTERP` marker and
always take the interpreter path, preserving the lazy decode semantics
for code executed out of data or stack.
"""

import sys

from repro.vm import isa
from repro.vm.isa import Op, Mode
from repro.vm.image import to_unsigned, PAGE_SHIFT

#: word-aligned absolute loads/stores go through a ``cast('i')``
#: memoryview — native-endian, so only when native is little like the
#: guest (the byte-slice path stays for the rare big-endian host)
_MV4_OK = sys.byteorder == "little"

#: marker cached for pcs that must go through the interpreter
INTERP = "interp"

SIG_OK = 0  #: ran to the end of what it could (or out of budget)
SIG_TRAP = 1  #: executed a trap instruction
SIG_HALT = 2  #: executed a halt instruction
SIG_BAIL = 3  #: instruction at next_pc needs the interpreter (untouched)

#: longest straight-line run compiled into one block
MAX_BLOCK_LEN = 64
#: most blocks linked into one trace function
TRACE_MAX_BLOCKS = 8

_ISIZE = isa.INSTRUCTION_SIZE

_ALU = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.MULL: "*",
        Op.AND: "&", Op.OR: "|", Op.XOR: "^"}

_COND = {Op.BEQ: "zf", Op.BNE: "not zf", Op.BLT: "nf",
         Op.BLE: "nf or zf", Op.BGT: "not (nf or zf)", Op.BGE: "not nf"}

_WRAP = ("if %(v)s > 2147483647 or %(v)s < -2147483648: "
         "%(v)s = ((%(v)s & 4294967295) ^ 2147483648) - 2147483648")

#: modes whose jump target is a compile-time constant
_STATIC = (Mode.IMM, Mode.ABS)
#: modes that need a runtime address guard (and may therefore bail)
_GUARDED = (Mode.IND, Mode.IND_DISP)

#: opcodes that set zf/nf (the flag-liveness pass elides dead writes)
_FLAG_WRITERS = frozenset((
    Op.MOVE, Op.MOVB, Op.ADD, Op.SUB, Op.MUL, Op.MULL, Op.DIV, Op.DIVL,
    Op.MOD, Op.AND, Op.OR, Op.XOR, Op.NOT, Op.NEG, Op.SHL, Op.SHR,
    Op.BFEXT, Op.CMP, Op.TST))


class _Uncompilable(Exception):
    """This instruction must end the block (interpreter handles it)."""


class _Ctx:
    """Compile context: layout constants, register mapping and exits.

    With ``dmap``/``amap`` unset the context is in *probe* mode —
    register references emit plain ``d[i]``/``a[i]`` subscripts — but
    either way every reference is recorded in the ``dused``/``aused``
    (and ``dwritten``/``awritten``) sets, so a probe pass over a block
    discovers exactly the registers the final pass will touch.
    """

    def __init__(self, text_end, mem_size, dmap=None, amap=None,
                 heads=frozenset(), spill=""):
        self.text_end = text_end
        self.mem_size = mem_size
        self.dmap = dmap  #: reg -> local name, or None (probe mode)
        self.amap = amap
        self.heads = heads  #: pcs dispatchable inside this trace
        self.spill = spill  #: "d[0] = rd0; ..." prefix for every exit
        self.n = 0  #: index of the instruction within its block
        self.pc = 0  #: its program counter
        self.flags_live = True  #: emit this instruction's flag writes?
        self.uses_mv4 = False  #: emit the cast-memoryview prologue?
        self.dused = set()
        self.aused = set()
        self.dwritten = set()
        self.awritten = set()

    # -- register references ----------------------------------------------

    def d(self, operand):
        i = operand & 7
        self.dused.add(i)
        return self.dmap[i] if self.dmap is not None else "d[%d]" % i

    def a(self, operand):
        i = operand & 7
        self.aused.add(i)
        return self.amap[i] if self.amap is not None else "a[%d]" % i

    def dl(self, operand):
        i = operand & 7
        self.dused.add(i)
        self.dwritten.add(i)
        return self.dmap[i] if self.dmap is not None else "d[%d]" % i

    def al(self, operand):
        i = operand & 7
        self.aused.add(i)
        self.awritten.add(i)
        return self.amap[i] if self.amap is not None else "a[%d]" % i

    # -- exits --------------------------------------------------------------

    def bail(self):
        """A return that hands this very instruction to the interpreter."""
        return "%sreturn _n + %d, %d, zf, nf, 3" % (self.spill, self.n,
                                                    self.pc)

    def stop(self, sig):
        """Return after executing this instruction (trap/halt)."""
        return "%sreturn _n + %d, %d, zf, nf, %d" % (
            self.spill, self.n + 1, self.pc + _ISIZE, sig)

    def exit(self, count, target):
        """Leave the trace for ``target`` (an expression string)."""
        return "%sreturn _n + %d, %s, zf, nf, 0" % (self.spill, count,
                                                    target)

    def transfer(self, count, static, expr):
        """One-line control transfer after ``count`` instructions of
        this block: a linked jump into a member block, or an exit."""
        if static is not None and static in self.heads:
            return "_n += %d; _pc = %d; continue" % (count, static)
        return self.exit(count, expr)


def _emit_value(lines, ctx, mode, operand, var, byte=False):
    """Return an expression for the operand's (guarded) value.

    Pure operands — immediates and registers — come back as inline
    expressions and emit no code at all, so ``add #7, d5`` compiles to
    a single statement instead of three.  Memory operands emit their
    guard and load into ``var`` and return it.
    """
    if mode == Mode.IMM:
        return "%d" % ((operand & 0xFF) if byte else operand)
    if mode == Mode.DREG:
        name = ctx.d(operand)
        return "(%s & 255)" % name if byte else name
    if mode == Mode.AREG:
        name = ctx.a(operand)
        return "(%s & 255)" % name if byte else name
    size = 1 if byte else 4
    if mode == Mode.ABS:
        if operand < 0 or operand + size > ctx.mem_size:
            raise _Uncompilable  # interpreter raises the segv
        if (_MV4_OK and not byte and operand % 4 == 0
                and ctx.mem_size % 4 == 0):
            # aligned word: one signed int32 read, no sign fix
            ctx.uses_mv4 = True
            return "mv4[%d]" % (operand >> 2)
        addr = "%d" % operand
    elif mode == Mode.IND:
        lines.append("t = %s" % ctx.a(operand))
        lines.append("if t < 0 or t + %d > %d: %s"
                     % (size, ctx.mem_size, ctx.bail()))
        addr = "t"
    elif mode == Mode.IND_DISP:
        disp, reg = isa.unpack_ind_disp(operand)
        lines.append("t = %s + %d" % (ctx.a(reg), disp))
        lines.append("if t < 0 or t + %d > %d: %s"
                     % (size, ctx.mem_size, ctx.bail()))
        addr = "t"
    else:
        raise _Uncompilable
    if byte:
        lines.append("%s = mem[%s]" % (var, addr))
    else:
        if addr == "t":
            lines.append("%s = _fb(mem[t:t + 4], 'little')" % var)
        else:
            lines.append("%s = _fb(mem[%d:%d], 'little')"
                         % (var, operand, operand + 4))
        lines.append("if %s & 2147483648: %s -= 4294967296" % (var, var))
    return var


def _emit_store(lines, ctx, mode, operand, var, byte=False):
    """Emit a store of ``var`` (already signed-32 unless byte) to the
    operand.  Memory stores are guarded against the text segment so a
    block can never invalidate itself mid-run."""
    if mode == Mode.DREG:
        lines.append("%s = %s%s" % (ctx.dl(operand), var,
                                    " & 255" if byte else ""))
        return
    if mode == Mode.AREG:
        lines.append("%s = %s%s" % (ctx.al(operand), var,
                                    " & 255" if byte else ""))
        return
    size = 1 if byte else 4
    if mode == Mode.ABS:
        if (operand < ctx.text_end
                or operand + size > ctx.mem_size):
            raise _Uncompilable  # text write or segv: interpreter's job
        if (_MV4_OK and not byte and operand % 4 == 0
                and ctx.mem_size % 4 == 0):
            # aligned word: every value here is already signed 32-bit
            ctx.uses_mv4 = True
            lines.append("mv4[%d] = %s" % (operand >> 2, var))
            _emit_dirty(lines, "%d" % operand, 4)
            return
        addr = "%d" % operand
    elif mode == Mode.IND:
        lines.append("t = %s" % ctx.a(operand))
        lines.append("if t < %d or t + %d > %d: %s"
                     % (ctx.text_end, size, ctx.mem_size, ctx.bail()))
        addr = "t"
    elif mode == Mode.IND_DISP:
        disp, reg = isa.unpack_ind_disp(operand)
        lines.append("t = %s + %d" % (ctx.a(reg), disp))
        lines.append("if t < %d or t + %d > %d: %s"
                     % (ctx.text_end, size, ctx.mem_size, ctx.bail()))
        addr = "t"
    else:
        raise _Uncompilable  # store to immediate / bad mode: segv
    if byte:
        lines.append("mem[%s] = %s & 255" % (addr, var))
    else:
        lines.append("mem[%s:%s + 4] = (%s & 4294967295)"
                     ".to_bytes(4, 'little')" % (addr, addr, var))
    _emit_dirty(lines, addr, 1 if byte else 4)


def _emit_dirty(lines, addr, size):
    """Mark the page(s) a store of ``size`` bytes at ``addr`` touches,
    mirroring the interpreter's ``write_u8``/``write_i32``."""
    if addr == "t":
        lines.append("dp[t >> %d] = 1" % PAGE_SHIFT)
        if size == 4:
            lines.append("dp[(t + 3) >> %d] = 1" % PAGE_SHIFT)
        return
    first = int(addr) >> PAGE_SHIFT
    last = (int(addr) + size - 1) >> PAGE_SHIFT
    lines.append("dp[%d] = 1" % first)
    if last != first:
        lines.append("dp[%d] = 1" % last)


def _target_expr(ctx, mode, operand):
    """Jump/branch target, matching ``CPU._address`` exactly."""
    if mode in (Mode.IMM, Mode.ABS):
        return "%d" % operand
    if mode == Mode.DREG:
        return ctx.d(operand)
    if mode in (Mode.AREG, Mode.IND):
        return ctx.a(operand)
    if mode == Mode.IND_DISP:
        disp, reg = isa.unpack_ind_disp(operand)
        return "%s + %d" % (ctx.a(reg), disp)
    raise _Uncompilable  # _address would segv; interpreter's job


def _alu_out(ctx, dm, dv):
    """Result variable for an arithmetic op: the destination register
    local itself when the destination is a register (skipping the v2
    copy and the separate store), else ``v2``.  Safe because nothing
    can bail after the operand guards have passed."""
    if dm == Mode.DREG:
        return ctx.dl(dv), True
    if dm == Mode.AREG:
        return ctx.al(dv), True
    return "v2", False


def _emit_flags(lines, ctx, var):
    if not ctx.flags_live:
        return
    try:  # a constant's flags fold at compile time
        value = int(var)
    except ValueError:
        lines.append("zf = %s == 0" % var)
        lines.append("nf = %s < 0" % var)
    else:
        lines.append("zf = %r" % (value == 0))
        lines.append("nf = %r" % (value < 0))


def _emit_instruction(lines, ctx, inst):
    """Emit one instruction; returns True if it terminates the block."""
    opcode, sm, s, dm, dv = inst
    n, pc = ctx.n, ctx.pc

    if opcode == Op.NOP:
        return False
    if opcode == Op.HALT:
        lines.append(ctx.stop(2))
        return True
    if opcode == Op.TRAP:
        lines.append(ctx.stop(1))
        return True

    if opcode == Op.MOVE:
        val = _emit_value(lines, ctx, sm, s, "v")
        _emit_store(lines, ctx, dm, dv, val)
        _emit_flags(lines, ctx, val)
        return False
    if opcode == Op.MOVB:
        val = _emit_value(lines, ctx, sm, s, "v", byte=True)
        _emit_store(lines, ctx, dm, dv, val, byte=True)
        _emit_flags(lines, ctx, val)
        return False

    if opcode == Op.LEA:
        if dm != Mode.AREG:
            raise _Uncompilable  # "ill" fault with executed - 1
        if sm in (Mode.IMM, Mode.ABS):
            lines.append("%s = %d" % (ctx.al(dv), s))
            return False
        lines.append("v = %s" % _target_expr(ctx, sm, s))
        if sm == Mode.IND_DISP:  # the only mode that can overflow
            lines.append(_WRAP % {"v": "v"})
        lines.append("%s = v" % ctx.al(dv))
        return False

    if opcode in _ALU:
        src = _emit_value(lines, ctx, sm, s, "v1")
        dst = _emit_value(lines, ctx, dm, dv, "v2")
        out, direct = _alu_out(ctx, dm, dv)
        if opcode in (Op.AND, Op.OR, Op.XOR):
            lines.append("%s = (%s %s %s) & 4294967295"
                         % (out, dst, _ALU[opcode], src))
        else:
            lines.append("%s = %s %s %s" % (out, dst, _ALU[opcode], src))
        lines.append(_WRAP % {"v": out})
        if not direct:
            _emit_store(lines, ctx, dm, dv, out)
        _emit_flags(lines, ctx, out)
        return False
    if opcode in (Op.DIV, Op.DIVL, Op.MOD):
        if sm == Mode.IMM and s == 0:
            raise _Uncompilable  # certain fpe: interpreter's job
        src = _emit_value(lines, ctx, sm, s, "v1")
        dst = _emit_value(lines, ctx, dm, dv, "v2")
        out, direct = _alu_out(ctx, dm, dv)
        if sm == Mode.IMM:
            # truncated division by a compile-time constant depends
            # only on |divisor|: the sign rides on the dividend (and
            # flips with a negative divisor for the quotient)
            mag = abs(s)
            if opcode == Op.MOD:
                # |result| < |divisor|, so this can never wrap
                lines.append("%s = %s %% %d if %s >= 0 else"
                             " -(-%s %% %d)"
                             % (out, dst, mag, dst, dst, mag))
            else:
                if s > 0:
                    lines.append("%s = %s // %d if %s >= 0 else"
                                 " -(-%s // %d)"
                                 % (out, dst, mag, dst, dst, mag))
                else:
                    lines.append("%s = -(%s // %d) if %s >= 0 else"
                                 " -%s // %d"
                                 % (out, dst, mag, dst, dst, mag))
                if mag == 1:  # -2**31 / -1 is the one overflow
                    lines.append(_WRAP % {"v": out})
        else:
            lines.append("if %s == 0: %s" % (src, ctx.bail()))  # fpe
            # floored-to-truncated correction: one %% plus a branch,
            # in place of the abs/floordiv/multiply round trip
            if opcode == Op.MOD:
                lines.append("q = %s %% %s" % (dst, src))
                lines.append("if q and (%s < 0) != (%s < 0): q -= %s"
                             % (dst, src, src))
                lines.append("%s = q" % out)
            else:
                lines.append("q = %s // %s" % (dst, src))
                lines.append("if q < 0 and %s %% %s: q += 1"
                             % (dst, src))
                lines.append("%s = q" % out)
                lines.append(_WRAP % {"v": out})
        if not direct:
            _emit_store(lines, ctx, dm, dv, out)
        _emit_flags(lines, ctx, out)
        return False
    if opcode in (Op.SHL, Op.SHR, Op.BFEXT):
        src = _emit_value(lines, ctx, sm, s, "v1")
        dst = _emit_value(lines, ctx, dm, dv, "v2")
        out, direct = _alu_out(ctx, dm, dv)
        if opcode == Op.SHL:
            lines.append("%s = (%s & 4294967295) << (%s & 31)"
                         % (out, dst, src))
        elif opcode == Op.SHR:
            lines.append("%s = (%s & 4294967295) >> (%s & 31)"
                         % (out, dst, src))
        else:
            lines.append("%s = ((%s & 4294967295) >> (%s & 31)) & 255"
                         % (out, dst, src))
        lines.append(_WRAP % {"v": out})
        if not direct:
            _emit_store(lines, ctx, dm, dv, out)
        _emit_flags(lines, ctx, out)
        return False
    if opcode in (Op.NOT, Op.NEG):
        dst = _emit_value(lines, ctx, dm, dv, "v2")
        out, direct = _alu_out(ctx, dm, dv)
        lines.append("%s = %s(%s)" % (out, "~" if opcode == Op.NOT
                                      else "-", dst))
        lines.append(_WRAP % {"v": out})
        if not direct:
            _emit_store(lines, ctx, dm, dv, out)
        _emit_flags(lines, ctx, out)
        return False

    if opcode == Op.CMP:
        src = _emit_value(lines, ctx, sm, s, "v1")
        dst = _emit_value(lines, ctx, dm, dv, "v2")
        if ctx.flags_live:  # dead flags leave only the operand guards
            lines.append("v2 = %s - %s" % (dst, src))
            lines.append(_WRAP % {"v": "v2"})
            _emit_flags(lines, ctx, "v2")
        return False
    if opcode == Op.TST:
        dst = _emit_value(lines, ctx, dm, dv, "v2")
        _emit_flags(lines, ctx, dst)
        return False

    if opcode in isa.BRANCHES:
        static = s if sm in _STATIC else None
        target = _target_expr(ctx, sm, s)
        if opcode == Op.BRA:
            lines.append(ctx.transfer(n + 1, static, target))
            return True
        lines.append("if %s: %s" % (_COND[opcode],
                                    ctx.transfer(n + 1, static, target)))
        return False  # fall through, keep compiling

    if opcode == Op.JSR:
        static = s if sm in _STATIC else None
        target = _target_expr(ctx, sm, s)
        if static is None:
            # capture the target before the push can clobber a7
            lines.append("u = %s" % target)
            target = "u"
        ret = to_unsigned(pc + _ISIZE).to_bytes(4, "little")
        lines.append("t = %s - 4" % ctx.a(7))
        lines.append("if t < %d or t + 4 > %d: %s"
                     % (ctx.text_end, ctx.mem_size, ctx.bail()))
        lines.append("mem[t:t + 4] = %r" % ret)
        _emit_dirty(lines, "t", 4)
        lines.append("%s = t" % ctx.al(7))
        lines.append(ctx.transfer(n + 1, static, target))
        return True
    if opcode == Op.RTS:
        lines.append("t = %s" % ctx.a(7))
        lines.append("if t < 0 or t + 4 > %d: %s"
                     % (ctx.mem_size, ctx.bail()))
        lines.append("v = _fb(mem[t:t + 4], 'little')")
        lines.append("%s = t + 4" % ctx.al(7))
        lines.append(ctx.exit(n + 1, "v"))
        return True
    if opcode == Op.PUSH:
        val = _emit_value(lines, ctx, sm, s, "v")
        lines.append("t = %s - 4" % ctx.a(7))
        lines.append("if t < %d or t + 4 > %d: %s"
                     % (ctx.text_end, ctx.mem_size, ctx.bail()))
        if val.lstrip("-").isdigit():  # constant: pack it now
            packed = to_unsigned(int(val)).to_bytes(4, "little")
            lines.append("mem[t:t + 4] = %r" % packed)
        else:
            lines.append("mem[t:t + 4] = (%s & 4294967295)"
                         ".to_bytes(4, 'little')" % val)
        _emit_dirty(lines, "t", 4)
        lines.append("%s = t" % ctx.al(7))
        return False
    if opcode == Op.POP:
        if dm not in (Mode.DREG, Mode.AREG):
            raise _Uncompilable  # memory pops keep legacy ordering
        lines.append("t = %s" % ctx.a(7))
        lines.append("if t < 0 or t + 4 > %d: %s"
                     % (ctx.mem_size, ctx.bail()))
        lines.append("v = _fb(mem[t:t + 4], 'little')")
        lines.append("if v & 2147483648: v -= 4294967296")
        lines.append("%s = t + 4" % ctx.al(7))
        _emit_store(lines, ctx, dm, dv, "v")
        return False

    raise _Uncompilable  # unknown opcode: interpreter faults on it


# -- block discovery ---------------------------------------------------------


class _BlockIR:
    """One decoded straight-line block plus its static metadata."""

    __slots__ = ("pc", "insts", "terminated", "end_pc", "targets",
                 "dused", "aused", "dwritten", "awritten")


def _decode_block(model, image, start_pc, max_len=MAX_BLOCK_LEN):
    """Decode the straight-line run at ``start_pc``.

    Runs the emitter in probe mode to find where the block must end
    (uncompilable or unsupported instruction, terminator, text end)
    and which registers it touches.  Returns a :class:`_BlockIR`, or
    ``None`` when not even the first instruction is compilable.
    """
    text_end = image.text_base + image.text_size
    if start_pc < image.text_base or start_pc + _ISIZE > text_end:
        return None
    ctx = _Ctx(text_end, image.mem_size)
    mem = image.mem
    opcodes = model.opcodes
    scratch = []
    insts = []
    targets = []
    pc = start_pc
    terminated = False
    while len(insts) < max_len and pc + _ISIZE <= text_end:
        inst = isa.decode(mem, pc)
        if inst[0] not in opcodes:
            break  # illegal-instruction fault: interpreter's job
        ctx.n, ctx.pc = len(insts), pc
        saved = (set(ctx.dused), set(ctx.aused),
                 set(ctx.dwritten), set(ctx.awritten))
        try:
            terminated = _emit_instruction(scratch, ctx, inst)
        except _Uncompilable:
            # forget any registers only the aborted instruction used
            ctx.dused, ctx.aused, ctx.dwritten, ctx.awritten = saved
            break
        insts.append((pc, inst))
        if inst[1] in _STATIC and (inst[0] in isa.BRANCHES
                                   or inst[0] == Op.JSR):
            targets.append(inst[2])
        pc += _ISIZE
        if terminated:
            break
    if not insts:
        return None
    ir = _BlockIR()
    ir.pc = start_pc
    ir.insts = insts
    ir.terminated = terminated
    ir.end_pc = pc
    if not terminated:
        targets.append(pc)  # the fall-through edge is linkable too
    ir.targets = targets
    ir.dused = ctx.dused
    ir.aused = ctx.aused
    ir.dwritten = ctx.dwritten
    ir.awritten = ctx.awritten
    return ir


def _observes_flags(inst):
    """Can anything see the flags as they stand *entering* ``inst``?

    Conditional branches read them; guarded instructions may bail and
    return them to the interpreter; terminators transfer or return
    them.  Conservative: marking too much only emits extra flag writes.
    """
    opcode, sm, s, dm, dv = inst
    if opcode in isa.BRANCHES or opcode in (Op.JSR, Op.RTS, Op.TRAP,
                                            Op.HALT, Op.PUSH, Op.POP):
        return True
    if opcode in (Op.DIV, Op.DIVL, Op.MOD) and sm != Mode.IMM:
        return True
    return sm in _GUARDED or dm in _GUARDED


def _flag_liveness(insts):
    """Backward pass: ``live[i]`` is False only when instruction i's
    flag writes are provably overwritten before anyone can observe
    them (no branch, bail point or exit in between)."""
    live = [True] * len(insts)
    needed = True  # flags at block end flow to successors/interpreter
    for i in range(len(insts) - 1, -1, -1):
        inst = insts[i][1]
        writes = inst[0] in _FLAG_WRITERS
        if writes:
            live[i] = needed
        if _observes_flags(inst):
            needed = True
        elif writes:
            needed = False
    return live


# -- trace assembly ----------------------------------------------------------


def compile_trace(model, image, entry):
    """Compile the trace rooted at ``entry``.

    Discovers up to :data:`TRACE_MAX_BLOCKS` blocks breadth-first over
    statically-known branch/call/fall-through targets and emits them
    as one function with an internal dispatch loop.  Returns
    ``(trace_function, n_instructions, n_linked_blocks)``, or
    ``(INTERP, 0, 0)`` when ``entry`` is outside the text segment or
    its first instruction is uncompilable.
    """
    root = _decode_block(model, image, entry)
    if root is None:
        return INTERP, 0, 0
    order = [root]
    seen = {entry}
    frontier = list(root.targets)
    while frontier and len(order) < TRACE_MAX_BLOCKS:
        tpc = frontier.pop(0)
        if tpc in seen:
            continue
        seen.add(tpc)
        ir = _decode_block(model, image, tpc)
        if ir is None:
            continue  # exit edge: CPU._run dispatches it separately
        order.append(ir)
        frontier.extend(ir.targets)
    heads = frozenset(ir.pc for ir in order)
    # the dispatcher walks its arms linearly, so put loop heads (blocks
    # reached by a back edge) first: they dominate the dynamic count
    loop_heads = {tpc for ir in order for tpc in ir.targets
                  if tpc in heads and tpc <= ir.pc}
    order.sort(key=lambda ir: ir.pc not in loop_heads)

    dused, aused = set(), set()
    dwritten, awritten = set(), set()
    for ir in order:
        dused |= ir.dused
        aused |= ir.aused
        dwritten |= ir.dwritten
        awritten |= ir.awritten
    dmap = {i: "rd%d" % i for i in dused}
    amap = {i: "ra%d" % i for i in aused}
    parts = ["d[%d] = rd%d" % (i, i) for i in sorted(dwritten)]
    parts += ["a[%d] = ra%d" % (i, i) for i in sorted(awritten)]
    spill = "; ".join(parts) + ("; " if parts else "")

    ctx = _Ctx(image.text_base + image.text_size, image.mem_size,
               dmap, amap, heads, spill)
    body = []
    ndecoded = 0
    for index, ir in enumerate(order):
        body.append("        %s _pc == %d:"
                    % ("if" if index == 0 else "elif", ir.pc))
        # one budget guard per block; re-reaching the entry head with
        # zero progress bails so the interpreter runs the quantum tail
        sig = "(0 if _n else 3)" if ir.pc == entry else "0"
        body.append("            if budget - _n < %d: %sreturn _n, %d,"
                    " zf, nf, %s" % (len(ir.insts), spill, ir.pc, sig))
        lines = []
        live = _flag_liveness(ir.insts)
        for i, (pc, inst) in enumerate(ir.insts):
            ctx.n, ctx.pc = i, pc
            ctx.flags_live = live[i]
            _emit_instruction(lines, ctx, inst)
        if not ir.terminated:
            lines.append(ctx.transfer(len(ir.insts), ir.end_pc,
                                      "%d" % ir.end_pc))
        body.extend("            " + line for line in lines)
        ndecoded += len(ir.insts)
    body.append("        else:")
    body.append("            %sreturn _n, _pc, zf, nf, 0" % spill)

    head = ["def _trace(d, a, mem, dp, budget, zf, nf, "
            "_fb=int.from_bytes):"]
    if ctx.uses_mv4:
        head.append("    mv4 = memoryview(mem).cast('i')")
    head += ["    rd%d = d[%d]" % (i, i) for i in sorted(dused)]
    head += ["    ra%d = a[%d]" % (i, i) for i in sorted(aused)]
    head += ["    _n = 0", "    _pc = %d" % entry, "    while 1:"]
    source = "\n".join(head + body) + "\n"
    namespace = {}
    exec(compile(source, "<trace@0x%x>" % entry, "exec"), namespace)
    fn = namespace["_trace"]
    fn.blocks = len(order)
    fn.trace_len = ndecoded
    fn.spill_regs = len(dwritten) + len(awritten)
    fn.source = source  # kept for debugging/tests
    return fn, ndecoded, len(order) - 1
