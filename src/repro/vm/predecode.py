"""Predecoded-block compiler for the CPU interpreter.

The text segment of a process image never changes between execs (and
``text_version`` tells us when it does), so instead of re-decoding and
re-dispatching every instruction through :meth:`CPU.run`'s if-chain,
we decode each straight-line run of instructions *once* and compile it
to a small Python function.  A block function has the signature::

    block(d, a, mem, dp, budget, zf, nf) -> (executed, next_pc, zf, nf, sig)

``dp`` is the image's per-page dirty bitmap: every memory store marks
the page(s) it touches, exactly as the interpreter's ``write_u8`` /
``write_i32`` do, so incremental dumps see the same dirty set on both
engines.

where ``sig`` is one of the :data:`SIG_OK`/``TRAP``/``HALT``/``BAIL``
codes below.  ``BAIL`` means the instruction at ``next_pc`` was *not*
executed and **no state was touched for it**: every guard (address out
of range, store into the text segment, divide by a runtime zero) fires
before the first mutation of its instruction, so the interpreter can
replay the instruction from scratch and produce the exact legacy
fault behaviour — partial-mutation order, fault pc, executed counts
and all.  That bail-before-mutate rule is what lets the fast path be
bit-identical to the reference interpreter.

Anything the compiler cannot prove safe (stores through unknown
addressing modes, instructions the CPU model faults on, constant
divides by zero, ``lea`` to a non-address register) simply terminates
the block; the interpreter handles the next instruction.  Program
counters outside the text segment get the :data:`INTERP` marker and
always take the interpreter path, preserving the lazy decode semantics
for code executed out of data or stack.
"""

from repro.vm import isa
from repro.vm.isa import Op, Mode
from repro.vm.image import to_unsigned, PAGE_SHIFT

#: marker cached for pcs that must go through the interpreter
INTERP = "interp"

SIG_OK = 0  #: ran to the end of what it could (or out of budget)
SIG_TRAP = 1  #: executed a trap instruction
SIG_HALT = 2  #: executed a halt instruction
SIG_BAIL = 3  #: instruction at next_pc needs the interpreter (untouched)

#: longest straight-line run compiled into one function
MAX_BLOCK_LEN = 64

_ISIZE = isa.INSTRUCTION_SIZE

_ALU = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.MULL: "*",
        Op.AND: "&", Op.OR: "|", Op.XOR: "^"}

_COND = {Op.BEQ: "zf", Op.BNE: "not zf", Op.BLT: "nf",
         Op.BLE: "nf or zf", Op.BGT: "not (nf or zf)", Op.BGE: "not nf"}

_WRAP = ("if %(v)s > 2147483647 or %(v)s < -2147483648: "
         "%(v)s = ((%(v)s & 4294967295) ^ 2147483648) - 2147483648")


class _Uncompilable(Exception):
    """This instruction must end the block (interpreter handles it)."""


class _Ctx:
    """Per-block compile context: layout constants and bail target."""

    def __init__(self, text_end, mem_size):
        self.text_end = text_end
        self.mem_size = mem_size
        self.n = 0  #: index of the instruction being emitted
        self.pc = 0  #: its program counter

    def bail(self):
        """A return that hands this very instruction to the interpreter."""
        return "return %d, %d, zf, nf, 3" % (self.n, self.pc)


def _reg(operand):
    return operand & 7


def _emit_value(lines, ctx, mode, operand, var, byte=False):
    """Emit code leaving the operand's (guarded) value in ``var``."""
    if mode == Mode.IMM:
        lines.append("%s = %d" % (var, (operand & 0xFF) if byte
                                  else operand))
        return
    if mode == Mode.DREG:
        lines.append("%s = d[%d]%s" % (var, _reg(operand),
                                       " & 255" if byte else ""))
        return
    if mode == Mode.AREG:
        lines.append("%s = a[%d]%s" % (var, _reg(operand),
                                       " & 255" if byte else ""))
        return
    size = 1 if byte else 4
    if mode == Mode.ABS:
        if operand < 0 or operand + size > ctx.mem_size:
            raise _Uncompilable  # interpreter raises the segv
        addr = "%d" % operand
    elif mode == Mode.IND:
        lines.append("t = a[%d]" % _reg(operand))
        lines.append("if t < 0 or t + %d > %d: %s"
                     % (size, ctx.mem_size, ctx.bail()))
        addr = "t"
    elif mode == Mode.IND_DISP:
        disp, reg = isa.unpack_ind_disp(operand)
        lines.append("t = a[%d] + %d" % (reg, disp))
        lines.append("if t < 0 or t + %d > %d: %s"
                     % (size, ctx.mem_size, ctx.bail()))
        addr = "t"
    else:
        raise _Uncompilable
    if byte:
        lines.append("%s = mem[%s]" % (var, addr))
    else:
        if addr == "t":
            lines.append("%s = _fb(mem[t:t + 4], 'little')" % var)
        else:
            lines.append("%s = _fb(mem[%d:%d], 'little')"
                         % (var, operand, operand + 4))
        lines.append("if %s & 2147483648: %s -= 4294967296" % (var, var))


def _emit_store(lines, ctx, mode, operand, var, byte=False):
    """Emit a store of ``var`` (already signed-32 unless byte) to the
    operand.  Memory stores are guarded against the text segment so a
    block can never invalidate itself mid-run."""
    if mode == Mode.DREG:
        lines.append("d[%d] = %s%s" % (_reg(operand), var,
                                       " & 255" if byte else ""))
        return
    if mode == Mode.AREG:
        lines.append("a[%d] = %s%s" % (_reg(operand), var,
                                       " & 255" if byte else ""))
        return
    size = 1 if byte else 4
    if mode == Mode.ABS:
        if (operand < ctx.text_end
                or operand + size > ctx.mem_size):
            raise _Uncompilable  # text write or segv: interpreter's job
        addr = "%d" % operand
    elif mode == Mode.IND:
        lines.append("t = a[%d]" % _reg(operand))
        lines.append("if t < %d or t + %d > %d: %s"
                     % (ctx.text_end, size, ctx.mem_size, ctx.bail()))
        addr = "t"
    elif mode == Mode.IND_DISP:
        disp, reg = isa.unpack_ind_disp(operand)
        lines.append("t = a[%d] + %d" % (reg, disp))
        lines.append("if t < %d or t + %d > %d: %s"
                     % (ctx.text_end, size, ctx.mem_size, ctx.bail()))
        addr = "t"
    else:
        raise _Uncompilable  # store to immediate / bad mode: segv
    if byte:
        lines.append("mem[%s] = %s & 255" % (addr, var))
    else:
        lines.append("mem[%s:%s + 4] = (%s & 4294967295)"
                     ".to_bytes(4, 'little')" % (addr, addr, var))
    _emit_dirty(lines, addr, 1 if byte else 4)


def _emit_dirty(lines, addr, size):
    """Mark the page(s) a store of ``size`` bytes at ``addr`` touches,
    mirroring the interpreter's ``write_u8``/``write_i32``."""
    if addr == "t":
        lines.append("dp[t >> %d] = 1" % PAGE_SHIFT)
        if size == 4:
            lines.append("dp[(t + 3) >> %d] = 1" % PAGE_SHIFT)
        return
    first = int(addr) >> PAGE_SHIFT
    last = (int(addr) + size - 1) >> PAGE_SHIFT
    lines.append("dp[%d] = 1" % first)
    if last != first:
        lines.append("dp[%d] = 1" % last)


def _target_expr(mode, operand):
    """Jump/branch target, matching ``CPU._address`` exactly."""
    if mode in (Mode.IMM, Mode.ABS):
        return "%d" % operand
    if mode == Mode.DREG:
        return "d[%d]" % _reg(operand)
    if mode in (Mode.AREG, Mode.IND):
        return "a[%d]" % _reg(operand)
    if mode == Mode.IND_DISP:
        disp, reg = isa.unpack_ind_disp(operand)
        return "a[%d] + %d" % (reg, disp)
    raise _Uncompilable  # _address would segv; interpreter's job


def _emit_flags(lines, var):
    lines.append("zf = %s == 0" % var)
    lines.append("nf = %s < 0" % var)


def _emit_instruction(lines, ctx, inst):
    """Emit one instruction; returns True if it terminates the block."""
    opcode, sm, s, dm, dv = inst
    n, pc = ctx.n, ctx.pc
    done = "return %d, " % (n + 1)

    if opcode == Op.NOP:
        return False
    if opcode == Op.HALT:
        lines.append(done + "%d, zf, nf, 2" % (pc + _ISIZE))
        return True
    if opcode == Op.TRAP:
        lines.append(done + "%d, zf, nf, 1" % (pc + _ISIZE))
        return True

    if opcode == Op.MOVE:
        _emit_value(lines, ctx, sm, s, "v")
        _emit_store(lines, ctx, dm, dv, "v")
        _emit_flags(lines, "v")
        return False
    if opcode == Op.MOVB:
        _emit_value(lines, ctx, sm, s, "v", byte=True)
        _emit_store(lines, ctx, dm, dv, "v", byte=True)
        _emit_flags(lines, "v")
        return False

    if opcode == Op.LEA:
        if dm != Mode.AREG:
            raise _Uncompilable  # "ill" fault with executed - 1
        if sm in (Mode.IMM, Mode.ABS):
            lines.append("a[%d] = %d" % (_reg(dv), s))
            return False
        lines.append("v = %s" % _target_expr(sm, s))
        if sm == Mode.IND_DISP:  # the only mode that can overflow
            lines.append(_WRAP % {"v": "v"})
        lines.append("a[%d] = v" % _reg(dv))
        return False

    if opcode in _ALU:
        _emit_value(lines, ctx, sm, s, "v1")
        _emit_value(lines, ctx, dm, dv, "v2")
        if opcode in (Op.AND, Op.OR, Op.XOR):
            lines.append("v2 = (v2 %s v1) & 4294967295"
                         % _ALU[opcode])
        else:
            lines.append("v2 = v2 %s v1" % _ALU[opcode])
        lines.append(_WRAP % {"v": "v2"})
        _emit_store(lines, ctx, dm, dv, "v2")
        _emit_flags(lines, "v2")
        return False
    if opcode in (Op.DIV, Op.DIVL, Op.MOD):
        if sm == Mode.IMM and s == 0:
            raise _Uncompilable  # certain fpe: interpreter's job
        _emit_value(lines, ctx, sm, s, "v1")
        _emit_value(lines, ctx, dm, dv, "v2")
        if sm != Mode.IMM:
            lines.append("if v1 == 0: " + ctx.bail())  # fpe
        lines.append("q = abs(v2) // abs(v1)")
        lines.append("if (v2 < 0) != (v1 < 0): q = -q")
        if opcode == Op.MOD:
            lines.append("v2 = v2 - q * v1")
        else:
            lines.append("v2 = q")
        lines.append(_WRAP % {"v": "v2"})
        _emit_store(lines, ctx, dm, dv, "v2")
        _emit_flags(lines, "v2")
        return False
    if opcode in (Op.SHL, Op.SHR, Op.BFEXT):
        _emit_value(lines, ctx, sm, s, "v1")
        _emit_value(lines, ctx, dm, dv, "v2")
        if opcode == Op.SHL:
            lines.append("v2 = (v2 & 4294967295) << (v1 & 31)")
        elif opcode == Op.SHR:
            lines.append("v2 = (v2 & 4294967295) >> (v1 & 31)")
        else:
            lines.append("v2 = ((v2 & 4294967295) >> (v1 & 31)) & 255")
        lines.append(_WRAP % {"v": "v2"})
        _emit_store(lines, ctx, dm, dv, "v2")
        _emit_flags(lines, "v2")
        return False
    if opcode in (Op.NOT, Op.NEG):
        _emit_value(lines, ctx, dm, dv, "v2")
        lines.append("v2 = %sv2" % ("~" if opcode == Op.NOT else "-"))
        lines.append(_WRAP % {"v": "v2"})
        _emit_store(lines, ctx, dm, dv, "v2")
        _emit_flags(lines, "v2")
        return False

    if opcode == Op.CMP:
        _emit_value(lines, ctx, sm, s, "v1")
        _emit_value(lines, ctx, dm, dv, "v2")
        lines.append("v2 = v2 - v1")
        lines.append(_WRAP % {"v": "v2"})
        _emit_flags(lines, "v2")
        return False
    if opcode == Op.TST:
        _emit_value(lines, ctx, dm, dv, "v2")
        _emit_flags(lines, "v2")
        return False

    if opcode in isa.BRANCHES:
        target = _target_expr(sm, s)
        if opcode == Op.BRA:
            lines.append(done + "%s, zf, nf, 0" % target)
            return True
        lines.append("if %s: %s" % (_COND[opcode],
                                    done + "%s, zf, nf, 0" % target))
        return False  # fall through, keep compiling

    if opcode == Op.JSR:
        target = _target_expr(sm, s)
        if sm not in (Mode.IMM, Mode.ABS):
            # capture the target before the push can clobber a7
            lines.append("u = %s" % target)
            target = "u"
        ret = to_unsigned(pc + _ISIZE).to_bytes(4, "little")
        lines.append("t = a[7] - 4")
        lines.append("if t < %d or t + 4 > %d: %s"
                     % (ctx.text_end, ctx.mem_size, ctx.bail()))
        lines.append("mem[t:t + 4] = %r" % ret)
        _emit_dirty(lines, "t", 4)
        lines.append("a[7] = t")
        lines.append(done + "%s, zf, nf, 0" % target)
        return True
    if opcode == Op.RTS:
        lines.append("t = a[7]")
        lines.append("if t < 0 or t + 4 > %d: %s"
                     % (ctx.mem_size, ctx.bail()))
        lines.append("v = _fb(mem[t:t + 4], 'little')")
        lines.append("a[7] = t + 4")
        lines.append(done + "v, zf, nf, 0")
        return True
    if opcode == Op.PUSH:
        _emit_value(lines, ctx, sm, s, "v")
        lines.append("t = a[7] - 4")
        lines.append("if t < %d or t + 4 > %d: %s"
                     % (ctx.text_end, ctx.mem_size, ctx.bail()))
        lines.append("mem[t:t + 4] = (v & 4294967295)"
                     ".to_bytes(4, 'little')")
        _emit_dirty(lines, "t", 4)
        lines.append("a[7] = t")
        return False
    if opcode == Op.POP:
        if dm not in (Mode.DREG, Mode.AREG):
            raise _Uncompilable  # memory pops keep legacy ordering
        lines.append("t = a[7]")
        lines.append("if t < 0 or t + 4 > %d: %s"
                     % (ctx.mem_size, ctx.bail()))
        lines.append("v = _fb(mem[t:t + 4], 'little')")
        lines.append("if v & 2147483648: v -= 4294967296")
        lines.append("a[7] = t + 4")
        _emit_store(lines, ctx, dm, dv, "v")
        return False

    raise _Uncompilable  # unknown opcode: interpreter faults on it


def compile_block(model, image, start_pc, max_len=MAX_BLOCK_LEN):
    """Compile the straight-line run starting at ``start_pc``.

    Returns ``(block_function, n_instructions)``, or ``(INTERP, 0)``
    when ``start_pc`` is outside the text segment or the very first
    instruction is uncompilable.
    """
    text_end = image.text_base + image.text_size
    if start_pc < image.text_base or start_pc + _ISIZE > text_end:
        return INTERP, 0
    ctx = _Ctx(text_end, image.mem_size)
    mem = image.mem
    opcodes = model.opcodes
    lines = []
    n = 0
    pc = start_pc
    terminated = False
    while n < max_len and pc + _ISIZE <= text_end:
        inst = isa.decode(mem, pc)
        if inst[0] not in opcodes:
            break  # illegal-instruction fault: interpreter's job
        mark = len(lines)
        if n:
            lines.append("if budget <= %d: return %d, %d, zf, nf, 0"
                         % (n, n, pc))
        ctx.n, ctx.pc = n, pc
        try:
            terminated = _emit_instruction(lines, ctx, inst)
        except _Uncompilable:
            del lines[mark:]
            break
        n += 1
        pc += _ISIZE
        if terminated:
            break
    if n == 0:
        return INTERP, 0
    if not terminated:
        lines.append("return %d, %d, zf, nf, 0" % (n, pc))
    source = ("def _block(d, a, mem, dp, budget, zf, nf, "
              "_fb=int.from_bytes):\n    "
              + "\n    ".join(lines) + "\n")
    namespace = {}
    exec(compile(source, "<block@0x%x>" % start_pc, "exec"), namespace)
    fn = namespace["_block"]
    fn.block_len = n
    fn.source = source  # kept for debugging/tests
    return fn, n
