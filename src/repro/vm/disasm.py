"""Disassembler for debugging and tests."""

from repro.vm import isa
from repro.vm.isa import Mode, Op


def _operand_str(mode, operand):
    if mode == Mode.IMM:
        return "#%d" % operand
    if mode == Mode.DREG:
        return "d%d" % operand
    if mode == Mode.AREG:
        return "sp" if operand == 7 else "a%d" % operand
    if mode == Mode.ABS:
        return "0x%x" % operand
    if mode == Mode.IND:
        return "(a%d)" % operand
    if mode == Mode.IND_DISP:
        disp, reg = isa.unpack_ind_disp(operand)
        return "%d(a%d)" % (disp, reg)
    return "?%d:%d" % (mode, operand)


def disassemble_one(blob, offset=0, address=None):
    """Disassemble the instruction at ``offset``; returns a string."""
    opcode, src_mode, src, dst_mode, dst = isa.decode(blob, offset)
    name = isa.OP_NAMES.get(opcode, "db 0x%02x" % opcode)
    if opcode in isa.ZERO_OPERAND:
        text = name
    elif opcode in isa.ONE_OPERAND_SRC:
        if opcode in isa.BRANCHES or opcode == Op.JSR:
            text = "%s %s" % (name, _operand_str(Mode.ABS, src)
                              if src_mode in (Mode.IMM, Mode.ABS)
                              else _operand_str(src_mode, src))
        else:
            text = "%s %s" % (name, _operand_str(src_mode, src))
    elif opcode in isa.ONE_OPERAND_DST:
        text = "%s %s" % (name, _operand_str(dst_mode, dst))
    else:
        text = "%s %s, %s" % (name, _operand_str(src_mode, src),
                              _operand_str(dst_mode, dst))
    if address is not None:
        text = "0x%06x: %s" % (address, text)
    return text


def disassemble(blob, base=0x1000, count=None):
    """Disassemble a text segment; returns a list of lines."""
    lines = []
    offset = 0
    emitted = 0
    while offset + isa.INSTRUCTION_SIZE <= len(blob):
        if count is not None and emitted >= count:
            break
        lines.append(disassemble_one(blob, offset, base + offset))
        offset += isa.INSTRUCTION_SIZE
        emitted += 1
    return lines
