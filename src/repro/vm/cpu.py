"""The CPU interpreter.

:meth:`CPU.run` executes instructions from a
:class:`~repro.vm.image.ProcessImage` until one of four things stops
it: the quantum is exhausted, the program executes ``trap`` (a system
call), the program faults (illegal instruction, segmentation
violation, divide by zero), or it executes ``halt`` (which user-mode
code is not allowed to do and is treated as a privilege fault by the
kernel).

Faults are reported as stop reasons, not Python exceptions, because
they are ordinary machine behaviour the kernel turns into signals —
e.g. running a 68020 binary on a 68010 stops with an
illegal-instruction fault, reproducing the paper's heterogeneity
crash.
"""

import hashlib

from repro.vm import isa
from repro.vm.isa import Op, Mode
from repro.vm.image import SegmentationFault, to_signed, to_unsigned
from repro.vm.predecode import INTERP, compile_trace


class Stop:
    """Base class for reasons the interpreter returned."""

    def __init__(self, executed):
        self.executed = executed  #: number of instructions retired

    def __repr__(self):
        return "%s(executed=%d)" % (type(self).__name__, self.executed)


class QuantumStop(Stop):
    """The instruction budget ran out; the process is still runnable."""


class TrapStop(Stop):
    """A ``trap`` instruction was executed (system call request)."""


class HaltStop(Stop):
    """A ``halt`` instruction was executed (user-mode privilege fault)."""


class FaultStop(Stop):
    """A machine fault; ``kind`` is ``"ill"``, ``"segv"`` or ``"fpe"``."""

    def __init__(self, executed, kind, address=None):
        super().__init__(executed)
        self.kind = kind
        self.address = address

    def __repr__(self):
        return "FaultStop(kind=%s, executed=%d)" % (self.kind,
                                                    self.executed)


_ALU_OPS = {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
            Op.XOR, Op.SHL, Op.SHR, Op.MULL, Op.DIVL, Op.BFEXT}


class CodeCache:
    """Content-keyed registry of compiled traces.

    Traces are keyed by ``(cpu model, text base, memory size, sha-256
    of the text bytes)`` — by *what the code is*, not by which image
    carries it — so they are shared across images, across hosts (the
    cluster hands every machine's CPU the same instance) and across
    migrations: a process that dumps on one host and restarts on
    another lands with its hot traces already compiled, and a
    re-arrival of unchanged text never counts as a
    ``cache_rebuilds``.
    """

    def __init__(self):
        self._traces = {}  #: key -> {pc: trace function or INTERP}

    def key_for(self, model, image):
        return (model.name, image.text_base, image.mem_size,
                hashlib.sha256(image.text_bytes()).digest())

    def texts(self):
        """How many distinct text segments the cache holds."""
        return len(self._traces)

    def blocks_for(self, model, image):
        """The shared pc -> trace map for this image's text; returns
        ``(blocks, hit)`` where ``hit`` says the text was seen before."""
        key = self.key_for(model, image)
        blocks = self._traces.get(key)
        if blocks is not None:
            return blocks, True
        blocks = self._traces[key] = {}
        return blocks, False


class CPU:
    """Interpreter for one CPU model."""

    def __init__(self, model):
        self.model = isa.cpu_model(model)
        #: optional :class:`~repro.perf.PerfCounters` (set by the cluster)
        self.perf = None
        #: trace compilation switch; the cluster's reference engine
        #: ("scan") turns it off so benchmarks can measure the
        #: pre-change engine end to end
        self.use_predecode = True
        #: content-keyed compiled-trace registry; the cluster replaces
        #: it with one instance shared by every machine's CPU so a
        #: migrated process finds its traces already compiled
        self.code_cache = CodeCache()

    # -- decode-cache management -----------------------------------------

    def warm_code_cache(self, image):
        """Account a code-cache arrival for ``image`` (exec/restart).

        Ensures the shared registry entry for the image's text exists
        without touching ``image._decode_cache`` (the per-image
        attachment stays lazy until the first run).  A known text is a
        ``shared_cache_hits`` — the migrated process skips recompila-
        tion outright — while unseen text is the one honest
        ``cache_rebuilds``.
        """
        if not self.use_predecode:
            return  # the reference engine never compiles anything
        __, hit = self.code_cache.blocks_for(self.model, image)
        perf = self.perf
        if perf is not None:
            if hit:
                perf.shared_cache_hits += 1
            else:
                perf.cache_rebuilds += 1

    def _prepare_cache(self, image):
        """(Re)build an image's decode cache: ``(version, blocks,
        decoded)`` where ``blocks`` maps pc -> compiled trace (shared
        between images with byte-identical text) and ``decoded`` is the
        per-image lazy single-instruction cache for out-of-text pcs."""
        blocks, hit = self.code_cache.blocks_for(self.model, image)
        if not hit and self.perf is not None:
            self.perf.cache_rebuilds += 1
        cache = (image.text_version, blocks, {})
        image._decode_cache = cache
        return cache

    # -- operand helpers -------------------------------------------------

    def _address(self, image, mode, operand):
        """Effective address for memory modes and jump targets."""
        regs = image.regs
        if mode in (Mode.IMM, Mode.ABS):
            return operand
        if mode == Mode.DREG:
            return regs.d[operand & 7]
        if mode == Mode.AREG:
            return regs.a[operand & 7]
        if mode == Mode.IND:
            return regs.a[operand & 7]
        if mode == Mode.IND_DISP:
            disp, reg = isa.unpack_ind_disp(operand)
            return regs.a[reg] + disp
        raise SegmentationFault(operand, "bad addressing mode %d" % mode)

    def _value(self, image, mode, operand, byte=False):
        regs = image.regs
        if mode == Mode.IMM:
            return (operand & 0xFF) if byte else operand
        if mode == Mode.DREG:
            return (regs.d[operand & 7] & 0xFF) if byte \
                else regs.d[operand & 7]
        if mode == Mode.AREG:
            return (regs.a[operand & 7] & 0xFF) if byte \
                else regs.a[operand & 7]
        address = self._address(image, mode, operand)
        if byte:
            return image.read_u8(address)
        return image.read_i32(address)

    def _store(self, image, mode, operand, value, byte=False):
        regs = image.regs
        if mode == Mode.IMM:
            raise SegmentationFault(operand, "store to immediate")
        if mode == Mode.DREG:
            regs.d[operand & 7] = (value & 0xFF) if byte \
                else to_signed(value)
            return
        if mode == Mode.AREG:
            regs.a[operand & 7] = (value & 0xFF) if byte \
                else to_signed(value)
            return
        address = self._address(image, mode, operand)
        if byte:
            image.write_u8(address, value)
        else:
            image.write_i32(address, value)

    # -- execution --------------------------------------------------------

    def run(self, image, max_instructions):
        """Execute until a stop condition; returns a :class:`Stop`."""
        stop = self._run(image, max_instructions)
        perf = self.perf
        if perf is not None:
            perf.vm_instructions += stop.executed
        return stop

    def _run(self, image, max_instructions):
        executed = 0
        regs = image.regs
        # per-image decode cache, keyed on text_version so
        # self-modifying code stays correct
        cache = image._decode_cache
        if cache is None or cache[0] != image.text_version:
            cache = self._prepare_cache(image)
        version, blocks, decoded = cache
        perf = self.perf
        supports = self.model.opcodes.__contains__
        isize = isa.INSTRUCTION_SIZE
        d = regs.d
        a = regs.a
        mem = image.mem
        dp = image.dirty_pages
        # Compiled traces cover the common case; anything they cannot
        # prove safe bails *before mutating state* so the reference
        # interpreter below replays it with exact legacy semantics.
        # While copy-on-reference chunks are pending the interpreter
        # runs alone: it routes every access through image._check,
        # which is where the pending chunks fault in.
        use_blocks = self.use_predecode and image._lazy is None
        try:
            while executed < max_instructions:
                pc = regs.pc
                if use_blocks:
                    block = blocks.get(pc)
                    if block is None:
                        block, ndecoded, nlinked = compile_trace(
                            self.model, image, pc)
                        blocks[pc] = block
                        if perf is not None and ndecoded:
                            perf.blocks_compiled += block.blocks
                            perf.instructions_decoded += ndecoded
                            perf.traces_linked += nlinked
                    if block is not INTERP:
                        n, npc, zf, nf, sig = block(
                            d, a, mem, dp, max_instructions - executed,
                            regs.zf, regs.nf)
                        executed += n
                        regs.pc = npc
                        regs.zf = zf
                        regs.nf = nf
                        if perf is not None:
                            perf.reg_spills += block.spill_regs
                        if sig == 0:
                            continue
                        if sig == 1:
                            return TrapStop(executed)
                        if sig == 2:
                            return HaltStop(executed)
                        pc = npc  # bail: interpret this instruction
                # ---- one instruction, reference interpreter ----------
                inst = decoded.get(pc)
                if inst is None:
                    if pc < image.text_base or \
                            pc + isize > image.mem_size:
                        return FaultStop(executed, "segv", pc)
                    if image._lazy is not None:
                        # instruction fetch from a pending chunk
                        # (code run out of data or stack)
                        image._lazy_touch(pc, isize)
                    inst = isa.decode(image.mem, pc)
                    decoded[pc] = inst
                    if perf is not None:
                        perf.instructions_decoded += 1
                opcode, src_mode, src, dst_mode, dst = inst
                if not supports(opcode):
                    return FaultStop(executed, "ill", pc)
                regs.pc = pc + isize
                executed += 1

                # ---- hot paths: register/immediate operands ----------
                if Op.ADD <= opcode <= Op.SHR and dst_mode == 1 \
                        and src_mode <= 1 and opcode != Op.NOT \
                        and opcode != Op.NEG:
                    # register fields are 3 bits wide, like hardware
                    rhs = src if src_mode == 0 else d[src & 7]
                    lhs = d[dst & 7]
                    if opcode == Op.ADD:
                        value = lhs + rhs
                    elif opcode == Op.SUB:
                        value = lhs - rhs
                    elif opcode == Op.MUL:
                        value = lhs * rhs
                    else:
                        value = self._alu(opcode, lhs, rhs)
                        if value is None:
                            regs.pc = pc
                            return FaultStop(executed, "fpe", pc)
                    if value > 2147483647 or value < -2147483648:
                        value = to_signed(to_unsigned(value))
                    d[dst & 7] = value
                    regs.zf = value == 0
                    regs.nf = value < 0
                    continue
                if opcode == Op.MOVE and src_mode <= 1 \
                        and 1 <= dst_mode <= 2:
                    value = src if src_mode == 0 else d[src & 7]
                    if dst_mode == 1:
                        d[dst & 7] = value
                    else:
                        a[dst & 7] = value
                    regs.zf = value == 0
                    regs.nf = value < 0
                    continue
                if opcode == Op.CMP and src_mode <= 1 and dst_mode == 1:
                    rhs = src if src_mode == 0 else d[src & 7]
                    value = d[dst & 7] - rhs
                    if value > 2147483647 or value < -2147483648:
                        value = to_signed(to_unsigned(value))
                    regs.zf = value == 0
                    regs.nf = value < 0
                    continue
                if Op.BRA <= opcode <= Op.BGE and src_mode in (0, 3):
                    if self._branch_taken(opcode, regs):
                        regs.pc = src
                    continue
                # ---- general paths -----------------------------------

                if opcode == Op.NOP:
                    continue
                if opcode == Op.HALT:
                    return HaltStop(executed)
                if opcode == Op.TRAP:
                    return TrapStop(executed)
                if opcode == Op.MOVE:
                    value = self._value(image, src_mode, src)
                    self._store(image, dst_mode, dst, value)
                    regs.set_flags(value)
                elif opcode == Op.MOVB:
                    value = self._value(image, src_mode, src, byte=True)
                    self._store(image, dst_mode, dst, value, byte=True)
                    regs.set_flags(value)
                elif opcode == Op.LEA:
                    address = self._address(image, src_mode, src)
                    if dst_mode != Mode.AREG:
                        return FaultStop(executed - 1, "ill", pc)
                    regs.a[dst] = to_signed(address)
                elif opcode in _ALU_OPS:
                    rhs = self._value(image, src_mode, src)
                    lhs = self._value(image, dst_mode, dst)
                    result = self._alu(opcode, lhs, rhs)
                    if result is None:
                        regs.pc = pc  # refetch on resume (process dies)
                        return FaultStop(executed, "fpe", pc)
                    result = to_signed(to_unsigned(result))
                    self._store(image, dst_mode, dst, result)
                    regs.set_flags(result)
                elif opcode == Op.NOT:
                    value = ~self._value(image, dst_mode, dst)
                    value = to_signed(to_unsigned(value))
                    self._store(image, dst_mode, dst, value)
                    regs.set_flags(value)
                elif opcode == Op.NEG:
                    value = -self._value(image, dst_mode, dst)
                    value = to_signed(to_unsigned(value))
                    self._store(image, dst_mode, dst, value)
                    regs.set_flags(value)
                elif opcode == Op.CMP:
                    rhs = self._value(image, src_mode, src)
                    lhs = self._value(image, dst_mode, dst)
                    regs.set_flags(to_signed(to_unsigned(lhs - rhs)))
                elif opcode == Op.TST:
                    regs.set_flags(self._value(image, dst_mode, dst))
                elif opcode in isa.BRANCHES:
                    if self._branch_taken(opcode, regs):
                        regs.pc = self._address(image, src_mode, src)
                elif opcode == Op.JSR:
                    target = self._address(image, src_mode, src)
                    image.push_i32(regs.pc)
                    regs.pc = target
                elif opcode == Op.RTS:
                    regs.pc = to_unsigned(image.pop_i32())
                elif opcode == Op.PUSH:
                    image.push_i32(self._value(image, src_mode, src))
                elif opcode == Op.POP:
                    self._store(image, dst_mode, dst, image.pop_i32())
                else:  # pragma: no cover - opcode table is exhaustive
                    return FaultStop(executed - 1, "ill", pc)
                if use_blocks and image.text_version != version:
                    # self-modifying code: compiled blocks are stale,
                    # finish this quantum on the interpreter
                    use_blocks = False
        except SegmentationFault as fault:
            return FaultStop(executed, "segv", fault.address)
        return QuantumStop(executed)

    @staticmethod
    def _alu(opcode, lhs, rhs):
        if opcode == Op.ADD:
            return lhs + rhs
        if opcode == Op.SUB:
            return lhs - rhs
        if opcode in (Op.MUL, Op.MULL):
            return lhs * rhs
        if opcode in (Op.DIV, Op.DIVL):
            if rhs == 0:
                return None
            quotient = abs(lhs) // abs(rhs)
            return quotient if (lhs < 0) == (rhs < 0) else -quotient
        if opcode == Op.MOD:
            if rhs == 0:
                return None
            quotient = abs(lhs) // abs(rhs)
            if (lhs < 0) != (rhs < 0):
                quotient = -quotient
            return lhs - quotient * rhs
        if opcode == Op.AND:
            return to_unsigned(lhs) & to_unsigned(rhs)
        if opcode == Op.OR:
            return to_unsigned(lhs) | to_unsigned(rhs)
        if opcode == Op.XOR:
            return to_unsigned(lhs) ^ to_unsigned(rhs)
        if opcode == Op.SHL:
            return to_unsigned(lhs) << (rhs & 31)
        if opcode == Op.SHR:
            return to_unsigned(lhs) >> (rhs & 31)
        if opcode == Op.BFEXT:
            return (to_unsigned(lhs) >> (rhs & 31)) & 0xFF
        raise AssertionError("not an ALU opcode: %d" % opcode)

    @staticmethod
    def _branch_taken(opcode, regs):
        if opcode == Op.BRA:
            return True
        if opcode == Op.BEQ:
            return regs.zf
        if opcode == Op.BNE:
            return not regs.zf
        if opcode == Op.BLT:
            return regs.nf
        if opcode == Op.BLE:
            return regs.nf or regs.zf
        if opcode == Op.BGT:
            return not (regs.nf or regs.zf)
        if opcode == Op.BGE:
            return not regs.nf
        raise AssertionError("not a branch: %d" % opcode)
