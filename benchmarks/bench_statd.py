"""statd telemetry-overhead benchmark: a migration storm with and
without cluster telemetry.

The observability contract measured end to end: an imbalanced storm
— every CPU hog starts on workstation ``w0`` — runs to completion
twice, once with the cluster's ``statd`` daemons sampling and
shipping reports and once without.  Three gates:

* **statd off** — the storm with telemetry never enabled must be
  byte-identical between the ``scan`` and ``fast`` engines, show
  zero ``st_*`` counter activity and carry no ``statd``/``alert``
  trace events: the subsystem is doubly opt-in and its mere
  existence perturbs nothing;
* **statd on** — the instrumented storm must also be
  engine-identical, including the spooled report bytes on the file
  server and the critical-path report: sampling, shipping and
  analysis are all deterministic virtual-time events;
* **overhead** — telemetry must stay cheap: the instrumented
  storm's virtual makespan may exceed the bare storm's by at most
  5%.

The critical-path analyzer runs over the instrumented storm's
migration timelines and its per-phase breakdown is included in the
report (and must telescope to the measured end-to-end latencies).

Writes ``BENCH_statd.json``; with ``--perf-report FILE`` the rows
and the critical-path report are also merged into an existing
``BENCH_perf.json`` under a ``statd`` key.

Usage::

    PYTHONPATH=src python benchmarks/bench_statd.py [--smoke]
        [--out BENCH_statd.json] [--perf-report BENCH_perf.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                os.pardir, "src"))

from repro.core.api import MigrationSite
from repro.costmodel import CostModel
from repro.errors import UnixError
from repro.net.statd import SPOOL_DIR, spool_path
from repro.obs.critpath import critical_path_report

#: the full storm: 6 hogs piled on one of 8 workstations, telemetry
#: sampling every virtual second while the migrations drain the pile
FULL = dict(hosts=8, hogs=6, iterations=300_000)
#: the CI smoke variant: half the storm on half the cluster
SMOKE = dict(hosts=4, hogs=3, iterations=150_000)

#: retry/poll knobs shrunk as in the chaos tests, plus loadd to give
#: the analyzer real migrations to attribute
FAST_KNOBS = dict(migrate_backoff_s=0.5, connect_backoff_s=0.5,
                  net_read_timeout_s=5.0, restart_poll_tries=30,
                  restart_poll_sleep_s=0.5, loadd_interval_s=1.0,
                  loadd_min_cpu_s=0.1, loadd_max_moves=4)

#: low-volume categories for the byte-identity comparisons
TRACE_CATEGORIES = ("fault", "hb", "dump", "restart", "migrate",
                    "recovery", "statd", "alert")

#: maximum virtual-time overhead telemetry may add to the storm
OVERHEAD_CEILING = 1.05


def run_storm(engine, telemetry, hosts, hogs, iterations):
    """One storm to completion; returns (row, trace, spool, report)."""
    workstations = ["w%d" % i for i in range(hosts)]
    knobs = dict(FAST_KNOBS)
    if telemetry:
        knobs.update(stat_interval_s=1.0, stat_rounds=12)
    site = MigrationSite(costs=CostModel(**knobs),
                         workstations=workstations, engine=engine)
    site.cluster.tracer.enable(*TRACE_CATEGORIES)
    site.run_quiet()
    for __ in range(hogs):
        site.start("w0", "/bin/cpuhog",
                   ["cpuhog", str(iterations)], uid=100)
    site.start_loadd(rounds=12)
    if telemetry:
        site.start_statd()

    def all_done():
        return all(p.zombie() or not p.is_vm()
                   for m in site.cluster.machines.values()
                   for p in m.kernel.procs.all_procs())

    site.run_until(all_done, max_steps=400_000_000)
    if not all_done():
        raise AssertionError("storm did not finish (engine=%s "
                             "telemetry=%s)" % (engine, telemetry))
    perf = site.cluster.perf
    snapshot = perf.snapshot()
    spool = {}
    server = site.machine("brador")
    for name in workstations:
        try:
            spool[name] = server.fs.read_file(
                spool_path(SPOOL_DIR, name)).hex()
        except UnixError:
            spool[name] = None
    critpath = critical_path_report(site.cluster)
    row = {
        "engine": engine,
        "statd": bool(telemetry),
        "hosts": hosts,
        "hogs": hogs,
        "iterations": iterations,
        "makespan_s": round(site.wall_seconds(), 3),
        "migrations": critpath["migrations"],
        "st": {k: v for k, v in snapshot.items()
               if k.startswith("st_")},
    }
    return row, site.cluster.tracer.to_jsonl(), spool, critpath


def run_benchmark(shape, out="BENCH_statd.json", perf_report=None,
                  verbose=True):
    def say(msg):
        if verbose:
            print(msg, flush=True)

    say("telemetry storm: %(hogs)d hogs piled on w0 of %(hosts)d "
        "workstations, %(iterations)d iterations each" % shape)
    rows, traces, spools, critpaths = [], {}, {}, {}
    for telemetry in (False, True):
        for engine in ("scan", "fast"):
            row, trace, spool, critpath = run_storm(
                engine, telemetry, **shape)
            rows.append(row)
            traces[(telemetry, engine)] = trace
            spools[(telemetry, engine)] = spool
            critpaths[(telemetry, engine)] = critpath
            say("  statd=%-5s engine=%-4s makespan=%8.2fs "
                "migrations=%d"
                % (row["statd"], engine, row["makespan_s"],
                   row["migrations"]))

    by = {(r["statd"], r["engine"]): r for r in rows}

    # -- determinism gates -------------------------------------------
    def comparable(row):
        return {k: v for k, v in row.items() if k != "engine"}

    for telemetry in (False, True):
        scan, fast = by[(telemetry, "scan")], by[(telemetry, "fast")]
        if comparable(scan) != comparable(fast) \
                or traces[(telemetry, "scan")] \
                != traces[(telemetry, "fast")] \
                or spools[(telemetry, "scan")] \
                != spools[(telemetry, "fast")] \
                or json.dumps(critpaths[(telemetry, "scan")],
                              sort_keys=True) \
                != json.dumps(critpaths[(telemetry, "fast")],
                              sort_keys=True):
            raise AssertionError(
                "engines disagree with statd=%s" % telemetry)
    off = by[(False, "fast")]
    if any(off["st"].values()):
        raise AssertionError("statd-off run shows statd activity")
    if any(spools[(False, "fast")].values()):
        raise AssertionError("statd-off run populated the spool")
    for needle in ('"cat":"statd"', '"cat": "statd"',
                   '"cat":"alert"', '"cat": "alert"'):
        if needle in traces[(False, "fast")]:
            raise AssertionError("statd-off trace has statd events")

    # -- the telemetry flowed and the analyzer telescopes ------------
    on = by[(True, "fast")]
    if not on["st"]["st_reports_recv"]:
        raise AssertionError("no report reached the spool")
    critpath = critpaths[(True, "fast")]
    if critpath["migrations"]:
        total = sum(r["total_us"] for r in critpath["phases"])
        if total != critpath["end_to_end"]["total_us"]:
            raise AssertionError("phase durations do not telescope "
                                 "to the end-to-end latency")

    # -- the headline: telemetry is nearly free ----------------------
    overhead = on["makespan_s"] / off["makespan_s"]
    say("overhead: %.3fx (%.2fs -> %.2fs, %d reports spooled)"
        % (overhead, off["makespan_s"], on["makespan_s"],
           on["st"]["st_reports_recv"]))
    if overhead > OVERHEAD_CEILING:
        raise AssertionError(
            "telemetry overhead %.3fx above the %.2fx ceiling"
            % (overhead, OVERHEAD_CEILING))

    report = {"benchmark": "bench_statd",
              "overhead": round(overhead, 4),
              "critical_path": critpath, "rows": rows}
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    say("written to %s" % out)

    if perf_report and os.path.exists(perf_report):
        with open(perf_report) as fh:
            merged = json.load(fh)
        merged["statd"] = {"rows": rows,
                           "overhead": round(overhead, 4),
                           "critical_path": critpath}
        with open(perf_report, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say("merged into %s" % perf_report)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_statd.json")
    parser.add_argument("--perf-report", default=None,
                        help="existing BENCH_perf.json to append the "
                             "statd rows to")
    parser.add_argument("--smoke", action="store_true",
                        help="half-size storm for CI")
    args = parser.parse_args(argv)
    run_benchmark(SMOKE if args.smoke else FULL, out=args.out,
                  perf_report=args.perf_report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
