"""Benchmark harness helpers.

Each benchmark runs one figure driver through pytest-benchmark (one
round — the simulation is deterministic, host-time variance is
irrelevant), prints the paper-vs-measured table, stores the virtual
times in ``benchmark.extra_info`` and asserts the paper's *shape*.
"""

import sys

from repro.clock import fmt_us


def run_figure(benchmark, driver, **kw):
    """Run ``driver`` once under pytest-benchmark; returns its result."""
    result = benchmark.pedantic(lambda: driver(**kw), rounds=1,
                                iterations=1)
    benchmark.extra_info["figure"] = result["figure"]
    for index, row in enumerate(result["rows"]):
        for key, value in row.items():
            if isinstance(value, (int, float)):
                benchmark.extra_info["%d_%s" % (index, key)] = \
                    round(value, 3)
    print_figure(result)
    return result


def print_figure(result):
    out = sys.stdout
    out.write("\n=== Figure %s: %s ===\n" % (result["figure"],
                                             result["title"]))
    rows = result["rows"]
    keys = list(rows[0].keys())
    header = "  ".join("%-22s" % k if i == 0 else "%14s" % k
                       for i, k in enumerate(keys))
    out.write(header + "\n")
    for row in rows:
        cells = []
        for index, key in enumerate(keys):
            value = row[key]
            if isinstance(value, float):
                if key.endswith("_us"):
                    text = fmt_us(value)
                else:
                    text = "%.2f" % value
            else:
                text = str(value)
            cells.append("%-22s" % text if index == 0
                         else "%14s" % text)
        out.write("  ".join(cells) + "\n")
    out.flush()
