"""Ablation A3: dynamic name strings vs fixed-size fields.

Paper (section 5.1): "Dynamically allocated strings were used instead
of fixed length strings, because ... they would have had to be large
enough to accommodate large path names, even though most path names
are usually of small length.  This would have led to wasting large
amounts of kernel memory."
"""

from repro.bench import ablation_name_storage
from conftest import run_figure


def test_name_storage(benchmark):
    result = run_figure(benchmark, ablation_name_storage,
                        open_files=(4, 16, 64))
    for row in result["rows"]:
        # dynamic allocation always wins, by a lot
        assert row["dynamic_bytes"] < row["fixed_bytes"]
        assert row["saving"] > 0.5
    # the saving persists as the file population grows
    biggest = result["rows"][-1]
    assert biggest["saving"] > 0.7
