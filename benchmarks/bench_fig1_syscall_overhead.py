"""Figure 1: overhead of the modified open()/close() and chdir().

Paper: "Our measurements show an overhead of about forty per cent
(44% for open()/close(), 36% for chdir())."
"""

from repro.bench import fig1
from conftest import run_figure


def test_fig1_syscall_overhead(benchmark):
    result = run_figure(benchmark, fig1)
    by_call = {row["call"]: row for row in result["rows"]}

    open_close = by_call["open/close"]
    chdir = by_call["chdir"]
    # the modified kernel is slower — by roughly forty per cent
    assert 1.30 < open_close["measured"] < 1.60
    assert 1.25 < chdir["measured"] < 1.50
    # open/close pays more than chdir (the dynamic allocation)
    assert open_close["measured"] > chdir["measured"]
