"""Recovery benchmark: detection and recovery latency vs heartbeat
interval.

For each heartbeat interval, the scripted crash-recovery scenario
from ``tests/test_recovery.py`` runs on the fast engine: a counter
job on ``brick`` is checkpointed to the file server by ``ckptd``,
``brick`` crashes, and a ``recoveryd`` on ``schooner`` detects the
death and restarts the job from the archived round.  Two virtual
latencies are measured on the survivor's clock, from the moment its
recovery daemon starts:

* **detection** — the failure detector first suspecting ``brick``
  (bounded by ``hb_timeout_s`` + one probe interval);
* **recovery** — the job restarted on the survivor (detection plus
  the claim, restage and restart machinery).

Writes ``BENCH_recovery.json``; with ``--perf-report FILE`` the
rows are also merged into an existing ``BENCH_perf.json`` so the
recovery numbers ride along with the engine report.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--smoke]
        [--out BENCH_recovery.json] [--perf-report BENCH_perf.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                os.pardir, "src"))

from repro.core.api import MigrationSite
from repro.costmodel import CostModel

DEFAULT_INTERVALS = (0.5, 1.0, 2.0)
SMOKE_INTERVALS = (1.0,)

#: retry/poll knobs shrunk exactly as in the chaos/recovery tests
FAST_KNOBS = dict(migrate_backoff_s=0.5, connect_backoff_s=0.5,
                  net_read_timeout_s=5.0, restart_poll_tries=30,
                  restart_poll_sleep_s=0.5)


def run_recovery(hb_interval_s, engine="fast"):
    """One crash-recovery pass; returns a result row (virtual times)."""
    costs = CostModel(hb_interval_s=hb_interval_s, **FAST_KNOBS)
    site = MigrationSite(costs=costs, engine=engine)
    site.run_quiet()
    site.machine("brador").fs.makedirs("/tmp/ckpt", mode=0o777)

    job = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    site.machine("brick").spawn(
        "/bin/ckptd", ["ckptd", str(job.pid), "2", "2",
                       "/n/brador/tmp/ckpt/job1"], uid=100, cwd="/tmp")

    def archived():
        from repro.errors import UnixError
        from repro.programs.ckmeta import parse_meta
        try:
            blob = site.machine("brador").fs.read_file(
                "/tmp/ckpt/job1/meta")
            return parse_meta(blob).get("round", -1) >= 0
        except (UnixError, ValueError):
            return False

    site.run_until(archived, max_steps=10_000_000)
    site.cluster.crash_host("brick")
    # latencies are measured on the *survivor's* clock, from the
    # moment its recovery daemon starts — a crashed machine's frozen
    # clock (which may be ahead of an idle survivor's) says nothing
    # about how long the survivor took to react
    schooner = site.machine("schooner")
    schooner.spawn(
        "/bin/recoveryd", ["recoveryd", "-i", str(hb_interval_s),
                           "-n", "60", "/n/brador/tmp/ckpt"],
        uid=100, cwd="/tmp")
    start_us = schooner.clock.now_us

    perf = site.cluster.perf
    site.run_until(lambda: perf.hb_suspects >= 1,
                   max_steps=20_000_000)
    detect_us = schooner.clock.now_us
    site.run_until(
        lambda: "recoveryd: recovered" in site.console("schooner"),
        max_steps=20_000_000)
    recover_us = schooner.clock.now_us

    detection_s = (detect_us - start_us) / 1e6
    recovery_s = (recover_us - start_us) / 1e6
    # the detector's contract: the first scan activates the monitor
    # with benefit-of-the-doubt, so suspicion lands no earlier than
    # hb_timeout_s after that and within two probe intervals past it
    # (one scan sleep before the first query, one tick of phase)
    low_s = costs.hb_timeout_s
    high_s = costs.hb_timeout_s + 2 * hb_interval_s + 1.0
    if not low_s <= detection_s <= high_s:
        raise AssertionError(
            "hb_interval=%.1f: detection took %.2f s (want %.2f..%.2f)"
            % (hb_interval_s, detection_s, low_s, high_s))
    if recovery_s < detection_s:
        raise AssertionError("recovered before detecting?")
    return {
        "hb_interval_s": hb_interval_s,
        "hb_timeout_s": costs.hb_timeout_s,
        "detection_s": round(detection_s, 3),
        "recovery_s": round(recovery_s, 3),
        "hb_probes": perf.hb_probes,
        "recoveries": perf.recoveries,
    }


def run_benchmark(intervals=DEFAULT_INTERVALS,
                  out="BENCH_recovery.json", perf_report=None,
                  verbose=True):
    def say(msg):
        if verbose:
            print(msg, flush=True)

    rows = []
    say("crash recovery latency vs heartbeat interval "
        "(virtual seconds on the survivor, from recoveryd start):")
    say("%12s  %12s  %12s" % ("interval", "detection", "recovery"))
    for hb_interval_s in intervals:
        row = run_recovery(hb_interval_s)
        rows.append(row)
        say("%12.1f  %12.2f  %12.2f" % (row["hb_interval_s"],
                                        row["detection_s"],
                                        row["recovery_s"]))

    report = {"benchmark": "bench_recovery", "rows": rows}
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    say("written to %s" % out)

    if perf_report and os.path.exists(perf_report):
        with open(perf_report) as fh:
            merged = json.load(fh)
        merged["recovery"] = rows
        with open(perf_report, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say("merged into %s" % perf_report)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_recovery.json")
    parser.add_argument("--perf-report", default=None,
                        help="existing BENCH_perf.json to append the "
                             "recovery rows to")
    parser.add_argument("--smoke", action="store_true",
                        help="single heartbeat interval for CI")
    args = parser.parse_args(argv)
    intervals = SMOKE_INTERVALS if args.smoke else DEFAULT_INTERVALS
    run_benchmark(intervals=intervals, out=args.out,
                  perf_report=args.perf_report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
