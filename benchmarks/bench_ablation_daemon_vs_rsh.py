"""Ablation A1: the section 6.4 daemon proposal vs rsh.

Paper: "it is always possible to write a better application which, by
use of a UNIX daemon process and a well known port can achieve more
satisfactory results."
"""

from repro.bench import ablation_daemon_vs_rsh
from conftest import run_figure


def test_daemon_vs_rsh(benchmark):
    result = run_figure(benchmark, ablation_daemon_vs_rsh)
    rsh_row, daemon_row = result["rows"]
    assert rsh_row["case"] == "rsh"
    # the daemon path is several times faster end to end
    assert daemon_row["speedup"] > 3.0
    # and in absolute terms no longer "half a minute"
    assert daemon_row["real_us"] < 10_000_000
