"""loadd migration-storm benchmark: makespan with and without the
load-balancing daemon.

The paper's section 8 application, measured the way its evaluation
section measures everything else: an imbalanced storm — every CPU
hog starts on workstation ``w0`` of an 8-host cluster — runs to
completion twice, once with the cluster's ``loadd`` daemons running
and once without.  The makespan (virtual time until the last job
finishes) must improve by at least 1.5x with loadd on: the daemons
notice the pile-up from the LOADREPORT exchange and drain ``w0``
through the migrationd pipeline while the jobs run.

Two determinism gates ride along, both engine-pair comparisons on
the low-volume trace categories:

* **loadd off** — the storm with the daemon never started must be
  byte-identical between the ``scan`` and ``fast`` engines and show
  zero ``ld_*`` counter activity: the subsystem is opt-in and its
  mere existence perturbs nothing;
* **loadd on** — the balanced storm must also be engine-identical:
  daemon scheduling, report exchange and the migrations themselves
  are all deterministic virtual-time events.

Writes ``BENCH_loadbalance.json``; with ``--perf-report FILE`` the
rows are also merged into an existing ``BENCH_perf.json`` under a
``loadbalance`` key.

Usage::

    PYTHONPATH=src python benchmarks/bench_loadbalance.py [--smoke]
        [--out BENCH_loadbalance.json] [--perf-report BENCH_perf.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                os.pardir, "src"))

from repro.core.api import MigrationSite
from repro.costmodel import CostModel

#: the full storm: 12 hogs piled on one of 8 workstations.  Each
#: hog is ~10 CPU-seconds of work — long enough that a ~4s migration
#: (dump under contention + restart ack) amortizes, which is exactly
#: the regime loadd is for
FULL = dict(hosts=8, hogs=12, iterations=400_000)
#: the CI smoke variant: a third of the storm on half the cluster
SMOKE = dict(hosts=4, hogs=4, iterations=600_000)

#: retry/poll knobs shrunk exactly as in the chaos tests, plus an
#: aggressive balancing cadence so the storm drains while it runs
FAST_KNOBS = dict(migrate_backoff_s=0.5, connect_backoff_s=0.5,
                  net_read_timeout_s=5.0, restart_poll_tries=30,
                  restart_poll_sleep_s=0.5, loadd_interval_s=1.0,
                  loadd_min_cpu_s=0.1, loadd_max_moves=4)

#: low-volume categories for the byte-identity comparisons
TRACE_CATEGORIES = ("fault", "hb", "dump", "restart", "migrate",
                    "recovery", "loadd")


def run_storm(engine, balance, hosts, hogs, iterations, rounds=20):
    """One storm to completion; returns (row, trace_jsonl)."""
    workstations = ["w%d" % i for i in range(hosts)]
    site = MigrationSite(costs=CostModel(**FAST_KNOBS),
                         workstations=workstations, engine=engine)
    site.cluster.tracer.enable(*TRACE_CATEGORIES)
    site.run_quiet()
    for __ in range(hogs):
        site.start("w0", "/bin/cpuhog",
                   ["cpuhog", str(iterations)], uid=100)
    if balance:
        site.start_loadd(rounds=rounds)

    def all_done():
        return all(p.zombie() or not p.is_vm()
                   for m in site.cluster.machines.values()
                   for p in m.kernel.procs.all_procs())

    site.run_until(all_done, max_steps=400_000_000)
    if not all_done():
        raise AssertionError("storm did not finish (engine=%s "
                             "balance=%s)" % (engine, balance))
    perf = site.cluster.perf
    row = {
        "engine": engine,
        "loadd": bool(balance),
        "hosts": hosts,
        "hogs": hogs,
        "iterations": iterations,
        "makespan_s": round(site.wall_seconds(), 3),
        "ld_moves": perf.ld_moves,
        "ld_move_failures": perf.ld_move_failures,
        "ld_reports_sent": perf.ld_reports_sent,
    }
    return row, site.cluster.tracer.to_jsonl()


def run_benchmark(shape, out="BENCH_loadbalance.json",
                  perf_report=None, verbose=True):
    def say(msg):
        if verbose:
            print(msg, flush=True)

    say("migration storm: %(hogs)d hogs piled on w0 of %(hosts)d "
        "workstations, %(iterations)d iterations each" % shape)
    rows = []
    traces = {}
    for balance in (False, True):
        for engine in ("scan", "fast"):
            row, trace = run_storm(engine, balance, **shape)
            rows.append(row)
            traces[(balance, engine)] = trace
            say("  loadd=%-5s engine=%-4s makespan=%8.2fs moves=%d"
                % (row["loadd"], engine, row["makespan_s"],
                   row["ld_moves"]))

    by = {(r["loadd"], r["engine"]): r for r in rows}

    # -- determinism gates -------------------------------------------
    def comparable(row):
        return {k: v for k, v in row.items() if k != "engine"}

    for balance in (False, True):
        scan, fast = by[(balance, "scan")], by[(balance, "fast")]
        if comparable(scan) != comparable(fast) or \
                traces[(balance, "scan")] != traces[(balance, "fast")]:
            raise AssertionError(
                "engines disagree with loadd=%s" % balance)
    off = by[(False, "fast")]
    if off["ld_moves"] or off["ld_reports_sent"]:
        raise AssertionError("loadd-off run shows loadd activity")
    if '"cat":"loadd"' in traces[(False, "fast")] or \
            '"cat": "loadd"' in traces[(False, "fast")]:
        raise AssertionError("loadd-off trace has loadd events")

    # -- the headline: balancing pays for itself ---------------------
    on = by[(True, "fast")]
    speedup = off["makespan_s"] / on["makespan_s"]
    say("speedup: %.2fx (%.2fs -> %.2fs, %d moves)"
        % (speedup, off["makespan_s"], on["makespan_s"],
           on["ld_moves"]))
    if speedup < 1.5:
        raise AssertionError(
            "loadd speedup %.2fx below the 1.5x floor" % speedup)
    if on["ld_move_failures"]:
        raise AssertionError("moves failed during the storm")

    report = {"benchmark": "bench_loadbalance",
              "speedup": round(speedup, 3), "rows": rows}
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    say("written to %s" % out)

    if perf_report and os.path.exists(perf_report):
        with open(perf_report) as fh:
            merged = json.load(fh)
        merged["loadbalance"] = rows
        with open(perf_report, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say("merged into %s" % perf_report)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_loadbalance.json")
    parser.add_argument("--perf-report", default=None,
                        help="existing BENCH_perf.json to append the "
                             "loadbalance rows to")
    parser.add_argument("--smoke", action="store_true",
                        help="quarter-size storm for CI")
    args = parser.parse_args(argv)
    run_benchmark(SMOKE if args.smoke else FULL, out=args.out,
                  perf_report=args.perf_report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
