"""Figure 4: migrate vs separate dumpproc+restart, four localities.

Paper: "depending on where the process was originally running and to
where it is to be restarted, migrate may take as much as ten times
more as it would take to run dumpproc and restart on the appropriate
machines.  For our test program, this amounts to almost half a
minute."  Also: "The difference between the local->remote and
remote->local cases is due to the fact that, in each case, different
programs are executed with a remote shell."
"""

from repro.bench import fig4
from conftest import run_figure


def test_fig4_migrate(benchmark):
    result = run_figure(benchmark, fig4)
    rows = result["rows"]
    ll, lr, rl, rr = rows

    # fully local migrate costs little more than the two commands
    assert ll["measured"] < 2.0
    # any rsh makes it several times slower
    assert lr["measured"] > 4.0
    assert rl["measured"] > 4.0
    # L->R and R->L differ (different programs run remotely)
    assert abs(lr["migrate_us"] - rl["migrate_us"]) > 10_000
    # fully remote is the worst: around an order of magnitude,
    # "almost half a minute" in absolute terms
    assert rr["measured"] > 8.0
    assert 15 < rr["migrate_us"] / 1e6 < 45
    # monotone: more rsh, more time
    assert ll["migrate_us"] < lr["migrate_us"] < rr["migrate_us"]
    assert ll["migrate_us"] < rl["migrate_us"] < rr["migrate_us"]
