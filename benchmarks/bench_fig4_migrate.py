"""Figure 4: migrate vs separate dumpproc+restart, four localities.

Paper: "depending on where the process was originally running and to
where it is to be restarted, migrate may take as much as ten times
more as it would take to run dumpproc and restart on the appropriate
machines.  For our test program, this amounts to almost half a
minute."  Also: "The difference between the local->remote and
remote->local cases is due to the fact that, in each case, different
programs are executed with a remote shell."
"""

import json
import os

from repro.bench import fig4
from repro.obs import to_chrome, validate_chrome
from conftest import run_figure

#: the migration-phase breakdown, in pipeline order (DESIGN.md §9)
PHASES = ["signal", "dump", "rewrite", "transfer", "restart", "ack"]


def test_fig4_phase_timeline():
    """Tracing the figure-4 migrations yields span timelines whose
    phase durations sum exactly to each migration's end-to-end
    latency, bounded by the wall-clock latency the figure reports.

    Deliberately not a ``benchmark``-fixture test so the CI trace
    job can run it without pytest-benchmark.  Set ``TRACE_OUT`` to
    also write the last case's Chrome trace for chrome://tracing.
    """
    result = fig4(trace=True)
    chrome = None
    for row in result["rows"]:
        timeline = row["timeline"]
        assert timeline is not None, row["case"]
        assert [p["phase"] for p in timeline["phases"]] == PHASES
        total = sum(p["duration_us"] for p in timeline["phases"])
        # the phases telescope: they sum to the end-to-end latency
        # (floating-point sum, hence the epsilon, not a tolerance)
        assert abs(total - timeline["end_to_end_us"]) < 1e-6
        # ...which is itself bounded by the figure's wall-clock number
        assert timeline["end_to_end_us"] <= row["migrate_us"] + 1e-6
        assert all(p["duration_us"] >= 0 for p in timeline["phases"])
        chrome = to_chrome(row["trace_events"])
        validate_chrome(chrome)
    out = os.environ.get("TRACE_OUT")
    if out:
        with open(out, "w") as fh:
            json.dump(chrome, fh, indent=1, sort_keys=True)


def test_fig4_migrate(benchmark):
    result = run_figure(benchmark, fig4)
    rows = result["rows"]
    ll, lr, rl, rr = rows

    # fully local migrate costs little more than the two commands
    assert ll["measured"] < 2.0
    # any rsh makes it several times slower
    assert lr["measured"] > 4.0
    assert rl["measured"] > 4.0
    # L->R and R->L differ (different programs run remotely)
    assert abs(lr["migrate_us"] - rl["migrate_us"]) > 10_000
    # fully remote is the worst: around an order of magnitude,
    # "almost half a minute" in absolute terms
    assert rr["measured"] > 8.0
    assert 15 < rr["migrate_us"] / 1e6 < 45
    # monotone: more rsh, more time
    assert ll["migrate_us"] < lr["migrate_us"] < rr["migrate_us"]
    assert ll["migrate_us"] < rl["migrate_us"] < rr["migrate_us"]
