#!/usr/bin/env python
"""Regenerate the measured tables in EXPERIMENTS.md.

Run ``python benchmarks/generate_report.py`` and paste (or redirect)
the output; every number comes from the same drivers the benchmark
suite asserts against.
"""

from repro.bench import (fig1, fig2, fig3, fig4,
                         ablation_daemon_vs_rsh,
                         ablation_polling_interval,
                         ablation_name_storage, ablation_namei_cache,
                         app_load_balancing, ext_compat_ids,
                         ext_socket_migration)
from repro.clock import fmt_us


def table(rows, columns):
    """Render a markdown table from a list of dicts."""
    out = ["| " + " | ".join(title for title, __ in columns) + " |",
           "|" + "|".join("---" for __ in columns) + "|"]
    for row in rows:
        cells = []
        for __, render in columns:
            cells.append(render(row))
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def ratio(key):
    return lambda row: "%.2f" % row[key]


def us(key):
    return lambda row: fmt_us(row[key])


def main():
    print("## Figure 1 — modified system call overhead\n")
    result = fig1()
    print(table(result["rows"], [
        ("call", lambda r: r["call"]),
        ("original (us/iter)", us("original_us_per_iter")),
        ("modified (us/iter)", us("modified_us_per_iter")),
        ("measured ratio", ratio("measured")),
        ("paper ratio", ratio("paper")),
    ]))

    print("\n## Figure 2 — dumping a process (normalized to SIGQUIT)\n")
    result = fig2()
    print(table(result["rows"], [
        ("case", lambda r: r["case"]),
        ("real", us("real_us")),
        ("CPU", us("cpu_us")),
        ("measured real x", ratio("measured_real")),
        ("paper real x", ratio("paper_real")),
        ("measured CPU x", ratio("measured_cpu")),
        ("paper CPU x", ratio("paper_cpu")),
    ]))
    print("\nanchor: SIGDUMP kill of the test program = %.2f s "
          "(paper: ~0.6 s)" % result["anchor_sigdump_real_s"])

    print("\n## Figure 3 — restarting a process (normalized to "
          "execve)\n")
    result = fig3()
    print(table(result["rows"], [
        ("case", lambda r: r["case"]),
        ("real", us("real_us")),
        ("CPU", us("cpu_us")),
        ("measured real x", ratio("measured_real")),
        ("paper real x", ratio("paper_real")),
        ("measured CPU x", ratio("measured_cpu")),
        ("paper CPU x", ratio("paper_cpu")),
    ]))
    print("\nanchor: execve of the test program = %.3f s "
          "(paper: < 0.2 s); rest_proc is %.0f%% of restart's real "
          "time (the figure's dotted split)"
          % (result["anchor_execve_real_s"],
             100 * result["rows"][2]["rest_proc_share_real"]))

    print("\n## Figure 4 — migrate vs dumpproc+restart (real time)\n")
    result = fig4()
    print(table(result["rows"], [
        ("case", lambda r: r["case"]),
        ("migrate", us("migrate_us")),
        ("dumpproc+restart", us("dumpproc_restart_us")),
        ("measured ratio", ratio("measured")),
        ("paper ratio (approx)", ratio("paper")),
    ]))

    print("\n## A1 — daemon vs rsh\n")
    result = ablation_daemon_vs_rsh()
    print(table(result["rows"], [
        ("transport", lambda r: r["case"]),
        ("remote migrate", us("real_us")),
        ("speedup", ratio("speedup")),
    ]))

    print("\n## A2 — dumpproc poll interval\n")
    result = ablation_polling_interval()
    print(table(result["rows"], [
        ("sleep (s)", lambda r: "%.1f" % r["sleep_s"]),
        ("real", us("real_us")),
        ("CPU", us("cpu_us")),
        ("real/CPU gap", ratio("gap")),
    ]))

    print("\n## A3 — name storage\n")
    result = ablation_name_storage()
    print(table(result["rows"], [
        ("open files", lambda r: str(r["open_files"])),
        ("dynamic bytes", lambda r: str(r["dynamic_bytes"])),
        ("fixed bytes", lambda r: str(r["fixed_bytes"])),
        ("saving", lambda r: "%.0f%%" % (100 * r["saving"])),
    ]))

    print("\n## A4 — load balancing makespan\n")
    result = app_load_balancing(iterations=400_000, hogs=2)
    print(table(result["rows"], [
        ("configuration", lambda r: r["case"]),
        ("makespan", us("makespan_us")),
        ("speedup", ratio("speedup")),
    ]))

    print("\n## A5 — getpid compatibility extension\n")
    result = ext_compat_ids()
    print(table(result["rows"], [
        ("kernel", lambda r: r["case"]),
        ("pidtemp after migration", lambda r: r["outcome"]),
    ]))

    print("\n## A6 — migrating a network service (section 9 "
          "future work)\n")
    result = ext_socket_migration()
    print(table(result["rows"], [
        ("kernel", lambda r: r["kernel"]),
        ("service survives", lambda r: r["service survives"]),
        ("outage", lambda r: fmt_us(r["outage_us"])
            if "outage_us" in r else "-"),
    ]))

    print("\n## A7 — a 4.3BSD-style name cache under restart\n")
    result = ablation_namei_cache()
    print(table(result["rows"], [
        ("kernel", lambda r: r["kernel"]),
        ("restart real", us("restart_real_us")),
        ("restart CPU", us("restart_cpu_us")),
        ("CPU speedup", ratio("speedup_cpu")),
    ]))


if __name__ == "__main__":
    main()
