"""Crash-sweep benchmark: what the migration ledger costs and buys.

Two measurements on the fast engine (DESIGN.md section 12):

* **overhead** — the same successful daemon-relayed migration is
  timed with the ``migration_ledger`` knob off and on; the difference
  is the price of the intent record, the phase advances and the
  chunk-store archive, paid on every ledgered migration;
* **recovery** — the orchestrator host crashes at the DUMPED phase
  advance (the victim is captured, nobody owns it), the host is
  rebooted, and a ``recoveryd -m`` sweep brings the job back up; the
  virtual latency from sweeper start to the recovered job is measured
  for each sweep interval.

Writes ``BENCH_crash_sweep.json``; with ``--perf-report FILE`` the
rows are also merged into an existing ``BENCH_perf.json`` so the
ledger numbers ride along with the engine report.

Usage::

    PYTHONPATH=src python benchmarks/bench_crash_sweep.py [--smoke]
        [--out BENCH_crash_sweep.json] [--perf-report BENCH_perf.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                os.pardir, "src"))

from repro.core.api import MigrationSite
from repro.costmodel import CostModel
from repro.programs import start_network_daemons

DEFAULT_INTERVALS = (0.5, 1.0, 2.0)
SMOKE_INTERVALS = (1.0,)

LEDGER_DIR = "/n/brador/usr/spool/migledger"

#: detection/staleness shrunk as in tests/test_migledger_sweep.py
KNOBS = dict(ledger_stale_s=3.0, hb_interval_s=1.0, hb_timeout_s=3.0,
             migrate_backoff_s=0.5, connect_backoff_s=0.5,
             net_read_timeout_s=5.0, restart_poll_tries=20,
             restart_poll_sleep_s=0.5, dump_poll_tries=10,
             dump_poll_sleep_s=0.5)


def _site(ledger_on, engine="fast"):
    costs = CostModel(migration_ledger=ledger_on, **KNOBS)
    site = MigrationSite(costs=costs,
                         workstations=("brick", "schooner", "tanker"),
                         engine=engine)
    site.run_quiet()
    # the operator-provisioned ledger spool (migledger.5)
    site.machine("brador").fs.makedirs("/usr/spool/migledger",
                                       mode=0o777)
    return site


def _start_victim(site):
    handle = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    return handle


def measure_migrate(ledger_on):
    """Virtual seconds for one successful fully-remote migration."""
    site = _site(ledger_on)
    victim = _start_victim(site)
    t0 = site.wall_seconds()
    handle = site.migrate(victim.pid, "brick", "schooner",
                          typed_on="tanker", uid=100, use_daemon=True,
                          wait_resumed=False)
    site.run_until(lambda: handle.exited, max_steps=60_000_000)
    elapsed = site.wall_seconds() - t0
    if handle.exit_status != 0:
        raise AssertionError("migrate failed (ledger %s): status %r"
                             % ("on" if ledger_on else "off",
                                handle.exit_status))
    return elapsed


def measure_sweep(sweep_interval_s):
    """One orchestrator-crash-at-DUMPED cell; returns a result row."""
    site = _site(ledger_on=True)
    victim = _start_victim(site)
    site.cluster.inject_faults("ledger.advance crash n=1", seed=77)
    site.migrate(victim.pid, "brick", "schooner", typed_on="tanker",
                 uid=100, use_daemon=True, wait_resumed=False)
    site.run_until(lambda: not site.machine("tanker").running,
                   max_steps=60_000_000)
    site.run_quiet(max_steps=20_000_000)

    # heal: the orchestrator host reboots (losing migrate), then a
    # recovery sweep finds the DUMPED record and restages the archive
    site.cluster.reboot_host("tanker")
    tanker = site.machine("tanker")
    start_network_daemons(tanker)
    site.run_quiet(max_steps=20_000_000)
    sweeper = tanker.spawn(
        "/bin/recoveryd", ["recoveryd", "-m", LEDGER_DIR,
                           "-i", str(sweep_interval_s), "-n", "60"],
        uid=0, cwd="/tmp")
    start_us = tanker.clock.now_us
    site.run_until(
        lambda: "recoveryd: recovered" in site.console("tanker"),
        max_steps=60_000_000)
    recovery_s = (tanker.clock.now_us - start_us) / 1e6
    del sweeper
    perf = site.cluster.perf
    if perf.ml_sweeps != 1:
        raise AssertionError("expected exactly one sweep recovery, "
                             "got %d" % perf.ml_sweeps)
    return {
        "sweep_interval_s": sweep_interval_s,
        "recovery_s": round(recovery_s, 3),
        "ml_sweeps": perf.ml_sweeps,
        "ml_claims": perf.ml_claims,
    }


def run_benchmark(intervals=DEFAULT_INTERVALS,
                  out="BENCH_crash_sweep.json", perf_report=None,
                  verbose=True):
    def say(msg):
        if verbose:
            print(msg, flush=True)

    plain_s = measure_migrate(ledger_on=False)
    ledgered_s = measure_migrate(ledger_on=True)
    overhead_pct = 100.0 * (ledgered_s - plain_s) / plain_s
    say("migration latency (virtual seconds, fully remote, daemon):")
    say("  ledger off %.2f s, on %.2f s (overhead %.1f%%)"
        % (plain_s, ledgered_s, overhead_pct))

    rows = []
    say("sweep recovery latency after an orchestrator crash at "
        "DUMPED (virtual seconds from sweeper start):")
    say("%12s  %12s" % ("interval", "recovery"))
    for sweep_interval_s in intervals:
        row = measure_sweep(sweep_interval_s)
        row.update(migrate_plain_s=round(plain_s, 3),
                   migrate_ledgered_s=round(ledgered_s, 3),
                   ledger_overhead_pct=round(overhead_pct, 1))
        rows.append(row)
        say("%12.1f  %12.2f" % (row["sweep_interval_s"],
                                row["recovery_s"]))

    report = {"benchmark": "bench_crash_sweep", "rows": rows}
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    say("written to %s" % out)

    if perf_report and os.path.exists(perf_report):
        with open(perf_report) as fh:
            merged = json.load(fh)
        merged["crash_sweep"] = rows
        with open(perf_report, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say("merged into %s" % perf_report)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_crash_sweep.json")
    parser.add_argument("--perf-report", default=None,
                        help="existing BENCH_perf.json to append the "
                             "crash-sweep rows to")
    parser.add_argument("--smoke", action="store_true",
                        help="single sweep interval for CI")
    args = parser.parse_args(argv)
    intervals = SMOKE_INTERVALS if args.smoke else DEFAULT_INTERVALS
    run_benchmark(intervals=intervals, out=args.out,
                  perf_report=args.perf_report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
