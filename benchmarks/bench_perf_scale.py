"""Engine benchmark: an N-machine, K-process migration storm.

Runs the same workload twice — once on the reference engine
(``engine="scan"``: O(M) driver scan per step, lazily-decoding
interpreter) and once on the fast engine (lazy-heap event-horizon
driver, predecoded instruction blocks) — then:

* asserts the two engines produced **identical virtual-time results**
  (clocks, consoles, network traffic, step counts), and
* writes ``BENCH_perf.json`` with real wall-clock steps/sec for both,
  the speedup, the fast engine's burst-length histogram and the
  decode-cache hit rate.

The JSON write is merge-preserving: keys other benchmarks put in the
same file (``bench_vm_micro``'s ``vm_micro`` section) survive a rerun.

``--check-floor`` compares the run against the committed
``benchmarks/perf_floor.json`` — recorded reference numbers scaled by
a generous tolerance, so CI catches a real regression (a driver or
emitter change that halves throughput) without flaking on slower
runner hardware.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_scale.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_perf_scale.py --smoke --check-floor

The workload: K CPU-bound hogs spread over N machines run for a
while, then every hog is migrated one machine to the right (dumpproc
on the source, restart over NFS on the destination), and everything
runs to completion.  Every hog's printed checksum is verified, so the
storm double-checks migration correctness while it measures speed.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                os.pardir, "src"))

from repro.clock import RealStopwatch
from repro.core.api import MigrationSite
from repro.programs.guest.cpuhog import expected_checksum

DEFAULT_MACHINES = 8
DEFAULT_PROCS = 32
DEFAULT_ITERATIONS = 50_000
SMOKE_ITERATIONS = 5_000

#: virtual time at which the storm strikes (hogs must be mid-loop)
STORM_AT_US = 150_000.0

#: committed reference numbers for --check-floor
FLOOR_FILE = os.path.join(os.path.dirname(__file__) or ".",
                          "perf_floor.json")


def run_storm(engine, machines=DEFAULT_MACHINES, procs=DEFAULT_PROCS,
              iterations=DEFAULT_ITERATIONS, trace=False):
    """Run the storm on one engine; returns (fingerprint, stats).

    ``trace=True`` turns on full-category event tracing — used by
    ``bench_trace_smoke.py`` to measure tracing overhead and to check
    that tracing never perturbs virtual time.
    """
    names = ["w%d" % i for i in range(machines)]
    site = MigrationSite(workstations=names, server=None,
                         daemons=False, engine=engine)
    if trace:
        site.cluster.tracer.enable()
    timer = RealStopwatch()
    handles = []
    for k in range(procs):
        host = names[k % machines]
        handle = site.start(host, "/bin/cpuhog",
                            ["cpuhog", str(iterations)], uid=100)
        handles.append((host, handle))

    site.run(until_us=STORM_AT_US)
    victims = [(host, handle) for host, handle in handles
               if not handle.exited]
    if len(victims) != procs:
        raise AssertionError(
            "engine=%s: %d hogs finished before the storm struck; "
            "raise iterations" % (engine, procs - len(victims)))
    # the storm, phase 1: dump every hog at once
    dumps = [site.start(host, "/bin/dumpproc",
                        ["dumpproc", "-p", str(handle.pid)], uid=100)
             for host, handle in victims]
    site.run_until(lambda: all(d.exited for d in dumps),
                   max_steps=200_000_000)
    failed = sum(1 for d in dumps if d.exit_status != 0)
    if failed:
        raise AssertionError("engine=%s: %d dumps failed"
                             % (engine, failed))
    # phase 2: restart every hog one machine to the right, in parallel
    restarts = [site.start(names[(names.index(host) + 1) % machines],
                           "/bin/restart",
                           ["restart", "-p", str(handle.pid),
                            "-h", host], uid=100)
                for host, handle in victims]
    site.run(max_steps=200_000_000)
    elapsed = timer.elapsed_s()
    migrated = sum(1 for r in restarts if r.exited)

    consoles = {name: site.console(name) for name in names}
    checksum = "checksum=%d" % expected_checksum(iterations)
    finished = sum(text.count(checksum) for text in consoles.values())
    if finished != procs:
        raise AssertionError(
            "engine=%s: %d/%d hogs produced the expected checksum"
            % (engine, finished, procs))
    if migrated != procs:
        raise AssertionError("engine=%s: only %d/%d migrated hogs ran "
                             "to completion" % (engine, migrated, procs))

    fingerprint = {
        "wall_us": site.cluster.wall_time_us(),
        "clocks_us": {n: site.machine(n).clock.now_us for n in names},
        "consoles": consoles,
        "net_bytes": site.cluster.network.bytes_moved,
        "net_messages": site.cluster.network.messages_sent,
        "steps": site.cluster.perf.steps,
    }
    stats = site.cluster.perf.snapshot(elapsed_s=elapsed)
    stats["migrations"] = migrated
    if trace:
        stats["trace_events"] = len(site.cluster.tracer.events)
    return fingerprint, stats


def run_benchmark(machines=DEFAULT_MACHINES, procs=DEFAULT_PROCS,
                  iterations=DEFAULT_ITERATIONS, out="BENCH_perf.json",
                  verbose=True):
    def say(msg):
        if verbose:
            print(msg, flush=True)

    say("migration storm: %d machines, %d processes, %d iterations"
        % (machines, procs, iterations))
    say("running reference engine (scan driver + interpreter)...")
    scan_print, scan_stats = run_storm("scan", machines, procs,
                                       iterations)
    say("  %.2fs, %.0f steps/sec" % (scan_stats["elapsed_s"],
                                     scan_stats["steps_per_sec"]))
    say("running fast engine (horizon bursts + predecoded blocks)...")
    fast_print, fast_stats = run_storm("fast", machines, procs,
                                       iterations)
    say("  %.2fs, %.0f steps/sec" % (fast_stats["elapsed_s"],
                                     fast_stats["steps_per_sec"]))

    if scan_print != fast_print:
        diverged = [key for key in scan_print
                    if scan_print[key] != fast_print[key]]
        raise AssertionError(
            "engines diverged on virtual-time results: %s" % diverged)
    say("virtual-time results: identical across engines")

    speedup = (fast_stats["steps_per_sec"]
               / scan_stats["steps_per_sec"]) \
        if scan_stats["steps_per_sec"] else float("inf")
    report = {
        "benchmark": "bench_perf_scale",
        "workload": {
            "machines": machines,
            "processes": procs,
            "iterations_per_process": iterations,
            "migrations": fast_stats["migrations"],
            "wall_time_us": fast_print["wall_us"],
        },
        "engines": {"scan": scan_stats, "fast": fast_stats},
        "speedup_steps_per_sec": round(speedup, 3),
        "virtual_time_identical": True,
    }
    _merge_write(out, report)
    say("speedup: %.2fx (written to %s)" % (speedup, out))
    return report


def _merge_write(out, report):
    """Write ``report``'s keys into ``out`` without clobbering keys
    other benchmarks keep in the same file (e.g. ``vm_micro``)."""
    doc = {}
    if os.path.exists(out):
        try:
            with open(out) as fh:
                doc = json.load(fh)
        except (ValueError, OSError):
            doc = {}
    if not isinstance(doc, dict):
        doc = {}
    doc.update(report)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _lookup(report, dotted):
    value = report
    for part in dotted.split("."):
        value = value[part]
    return value


def check_floor(report, smoke, floor_path=FLOOR_FILE, verbose=True):
    """Compare a run against the committed floor; returns the list of
    human-readable failures (empty when everything clears).

    Each floor entry is a dotted path into the report and the
    reference value recorded on the development machine; the effective
    gate is ``reference * tolerance``, with tolerance deliberately
    loose — the gate exists to catch order-of-magnitude regressions
    (a broken trace emitter, an accidentally-quadratic driver), not to
    measure the CI runner.
    """
    with open(floor_path) as fh:
        doc = json.load(fh)
    tolerance = doc["tolerance"]
    floors = doc["floors"]["smoke" if smoke else "full"]
    failures = []
    for dotted, reference in sorted(floors.items()):
        gate = reference * tolerance
        measured = _lookup(report, dotted)
        status = "ok" if measured >= gate else "FAIL"
        if verbose:
            print("  floor %-28s %10.1f >= %10.1f (%.1f * %.2f)  %s"
                  % (dotted, measured, gate, reference, tolerance,
                     status), flush=True)
        if measured < gate:
            failures.append("%s: measured %.1f below floor %.1f "
                            "(reference %.1f, tolerance %.2f)"
                            % (dotted, measured, gate, reference,
                               tolerance))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--machines", type=int, default=DEFAULT_MACHINES)
    parser.add_argument("--procs", type=int, default=DEFAULT_PROCS)
    parser.add_argument("--iterations", type=int,
                        default=DEFAULT_ITERATIONS)
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument("--smoke", action="store_true",
                        help="small iteration count for CI "
                             "(same storm shape, no speedup gate)")
    parser.add_argument("--check-floor", action="store_true",
                        help="fail if the run lands below the floors "
                             "committed in benchmarks/perf_floor.json")
    args = parser.parse_args(argv)
    iterations = SMOKE_ITERATIONS if args.smoke else args.iterations
    report = run_benchmark(machines=args.machines, procs=args.procs,
                           iterations=iterations, out=args.out)
    if args.check_floor:
        failures = check_floor(report, smoke=args.smoke)
        if failures:
            for failure in failures:
                print("FAIL: %s" % failure)
            return 1
        print("perf floor: clear")
    if not args.smoke and report["speedup_steps_per_sec"] < 3.0:
        print("FAIL: speedup %.2fx below the 3x target"
              % report["speedup_steps_per_sec"])
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
