"""Ablation A4: the systemwide load-balancing measurement.

The paper's future work ("implement one of the applications described
in Section 8 and measure the performance of our mechanism in that
context"): two CPU hogs on one workstation vs the same two hogs with
the load balancer allowed one move.
"""

from repro.bench import app_load_balancing
from conftest import run_figure


def test_load_balancing_makespan(benchmark):
    result = run_figure(benchmark, app_load_balancing,
                        iterations=400_000, hogs=2)
    baseline, balanced = result["rows"]
    # two jobs on two machines beat two jobs on one, even after
    # paying the migration cost
    assert balanced["speedup"] > 1.3
    # but not by more than the theoretical 2x
    assert balanced["speedup"] < 2.0
