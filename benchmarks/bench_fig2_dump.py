"""Figure 2: SIGQUIT vs SIGDUMP vs dumpproc.

Paper: "SIGDUMP requires roughly three times as much time (both CPU
and real) as SIGQUIT ... Dumpproc requires roughly four times as much
CPU time and six times as much real time as the SIGQUIT signal", and
the absolute anchor "about 0.6 seconds for killing our particular
test program with SIGDUMP".
"""

from repro.bench import fig2
from conftest import run_figure


def test_fig2_dump(benchmark):
    result = run_figure(benchmark, fig2)
    rows = {row["case"]: row for row in result["rows"]}

    sigdump = rows["SIGDUMP"]
    dumpproc = rows["dumpproc"]
    # SIGDUMP ~ 3x SIGQUIT, both CPU and real
    assert 2.3 < sigdump["measured_real"] < 3.7
    assert 2.3 < sigdump["measured_cpu"] < 4.5
    # dumpproc ~ 6x real; CPU lands higher than the paper's 4x here
    # (our tools pay the name-tracking open tax in full) but the
    # ordering and the real-time shape hold
    assert 5.0 < dumpproc["measured_real"] < 8.0
    assert dumpproc["measured_cpu"] > sigdump["measured_cpu"]
    # the real-vs-CPU discrepancy: dumpproc sleeps while the victim
    # dumps, so its real multiple exceeds nothing-sleeps SIGDUMP's
    assert dumpproc["measured_real"] > sigdump["measured_real"]
    # absolute anchor: SIGDUMP kill of the test program ~ 0.6 s
    assert 0.4 < result["anchor_sigdump_real_s"] < 0.8
