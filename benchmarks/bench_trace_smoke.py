"""Trace-overhead smoke: tracing off must cost ~nothing.

Runs the ``bench_perf_scale`` migration storm three times on the fast
engine — twice with tracing off, once with full-category tracing on —
and checks:

* all three runs produce the **identical virtual-time fingerprint**
  (tracing may never influence the simulation, on or off);
* the two tracing-off runs agree on real wall-clock throughput to
  within 5% — the gate the CI trace-smoke job enforces.  Tracing-off
  code paths differ from the pre-observability engine by exactly one
  attribute check per emission site, so run-to-run jitter *is* the
  overhead bound: there is no untraced build left to compare against.
  The run is retried a few times because shared CI runners jitter;
* the tracing-on slowdown is reported (informational — recording
  every syscall/sched event is allowed to cost real time).

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_smoke.py [--smoke]
        [--out BENCH_trace_overhead.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                os.pardir, "src"))

from bench_perf_scale import (run_storm, DEFAULT_MACHINES,
                              DEFAULT_PROCS, SMOKE_ITERATIONS)

#: |off1 - off2| / max must stay under this (the CI gate)
OFF_JITTER_GATE = 0.05
RETRIES = 5


def _measure(iterations, machines, procs):
    off1_print, off1 = run_storm("fast", machines, procs, iterations)
    off2_print, off2 = run_storm("fast", machines, procs, iterations)
    on_print, on = run_storm("fast", machines, procs, iterations,
                             trace=True)
    if not (off1_print == off2_print == on_print):
        raise AssertionError(
            "tracing perturbed virtual time: fingerprints differ")
    rates = [stats["steps_per_sec"] for stats in (off1, off2, on)]
    jitter = abs(rates[0] - rates[1]) / max(rates[0], rates[1])
    slowdown = rates[0] / rates[2] if rates[2] else float("inf")
    return {
        "off_steps_per_sec": [rates[0], rates[1]],
        "off_jitter": round(jitter, 4),
        "on_steps_per_sec": rates[2],
        "on_slowdown": round(slowdown, 3),
        "trace_events": on["trace_events"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--machines", type=int,
                        default=DEFAULT_MACHINES)
    parser.add_argument("--procs", type=int, default=DEFAULT_PROCS)
    parser.add_argument("--iterations", type=int,
                        default=SMOKE_ITERATIONS)
    parser.add_argument("--smoke", action="store_true",
                        help="alias kept for CI symmetry (the default "
                             "iteration count is already smoke-sized)")
    parser.add_argument("--out", default="BENCH_trace_overhead.json")
    args = parser.parse_args(argv)

    result = None
    for attempt in range(RETRIES):
        result = _measure(args.iterations, args.machines, args.procs)
        print("attempt %d: off jitter %.1f%%, on slowdown %.2fx, "
              "%d events" % (attempt + 1,
                             100 * result["off_jitter"],
                             result["on_slowdown"],
                             result["trace_events"]), flush=True)
        if result["off_jitter"] < OFF_JITTER_GATE:
            break
    result["attempts"] = attempt + 1
    result["gate"] = OFF_JITTER_GATE
    result["passed"] = result["off_jitter"] < OFF_JITTER_GATE
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if not result["passed"]:
        print("FAIL: tracing-off throughput jitter %.1f%% exceeds "
              "the %.0f%% gate" % (100 * result["off_jitter"],
                                   100 * OFF_JITTER_GATE))
        return 1
    print("tracing-off overhead within %.0f%% (written to %s)"
          % (100 * OFF_JITTER_GATE, args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
