"""VM microbenchmarks: the trace compiler against the interpreter.

Three guest workloads stress the three things the trace compiler
optimizes, at the CPU level with no kernel in the way:

* ``tight_loop``   — branchy integer arithmetic in registers (block
  linking and in-trace register caching);
* ``call_heavy``   — a jsr/rts leaf call per iteration (static call
  linking, stack traffic);
* ``mem_stream``   — streaming stores and loads through memory
  (guarded indirect access, dirty-page tracking).

Each guest runs twice — interpreter (``use_predecode=False``) and
trace engine — in 5000-instruction chunks like a kernel quantum, and
the final registers, flags and memory must be identical before any
number is reported.  Results merge into ``BENCH_perf.json`` under the
``vm_micro`` key, preserving whatever else lives in that file.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                os.pardir, "src"))

from repro.vm import assemble, CPU  # noqa: E402
from repro.vm.cpu import TrapStop  # noqa: E402
from repro.vm.image import ProcessImage, TEXT_BASE  # noqa: E402
from repro.vm.isa import cpu_model  # noqa: E402

#: one kernel scheduling quantum's worth of instructions
CHUNK = 5_000
MEM_SIZE = 256 * 1024

TIGHT_LOOP = """
start:  move  #0, d7
        move  #0, d6
loop:   add   #1, d7
        move  d7, d5
        mul   #13, d5
        add   #7, d5
        mod   #97, d5
        add   d5, d6
        cmp   #%(iters)d, d7
        blt   loop
        trap
"""

CALL_HEAVY = """
start:  move  #0, d7
        move  #0, d6
loop:   add   #1, d7
        push  d7
        jsr   leaf
        pop   d1
        add   d0, d6
        cmp   #%(iters)d, d7
        blt   loop
        trap
leaf:   move  4(sp), d0
        mul   #3, d0
        add   #1, d0
        rts
"""

MEM_STREAM = """
start:  move  #0, d7
loop:   lea   buf, a0
        move  #0, d6
wr:     move  d6, (a0)
        add   #4, a0
        add   #1, d6
        cmp   #64, d6
        blt   wr
        lea   buf, a1
        move  #0, d5
rd:     move  (a1), d4
        add   d4, d3
        add   #4, a1
        add   #1, d5
        cmp   #64, d5
        blt   rd
        add   #1, d7
        cmp   #%(iters)d, d7
        blt   loop
        trap
        .data
buf:    .space 256
"""

WORKLOADS = [
    ("tight_loop", TIGHT_LOOP, 30_000),
    ("call_heavy", CALL_HEAVY, 20_000),
    ("mem_stream", MEM_STREAM, 500),
]


def _fresh_image(out):
    image = ProcessImage(mem_size=MEM_SIZE)
    image.text_size = len(out.text)
    image.write_bytes(TEXT_BASE, out.text)
    image.write_bytes(TEXT_BASE + len(out.text), out.data)
    image.data_size = len(out.data)
    image.brk = TEXT_BASE + len(out.text) + len(out.data)
    image.clear_dirty()
    image.regs.pc = out.entry
    image.regs.sp = image.stack_top
    return image


def _run_engine(out, use_predecode, cpu="mc68010"):
    """Run a guest to its trap in CHUNK-sized budgets; returns the
    finished image, the instruction count and the elapsed seconds."""
    vm = CPU(cpu_model(cpu))
    vm.use_predecode = use_predecode
    image = _fresh_image(out)
    executed = 0
    start = time.perf_counter()
    while True:
        stop = vm.run(image, CHUNK)
        executed += stop.executed
        if isinstance(stop, TrapStop):
            break
        if stop.executed == 0:
            raise AssertionError("guest stopped making progress: %r"
                                 % stop)
    elapsed = time.perf_counter() - start
    return image, executed, elapsed


def _visible(image):
    return (list(image.regs.d), list(image.regs.a), image.regs.pc,
            image.regs.zf, image.regs.nf, bytes(image.mem),
            bytes(image.dirty_pages))


def run_workload(name, source, iters, verbose=True):
    out = assemble(source % {"iters": iters})
    interp, n_interp, t_interp = _run_engine(out, use_predecode=False)
    traced, n_traced, t_traced = _run_engine(out, use_predecode=True)
    if _visible(interp) != _visible(traced):
        raise AssertionError("%s: engines disagree on the final "
                             "machine state" % name)
    if n_interp != n_traced:
        raise AssertionError("%s: executed counts differ (%d vs %d)"
                             % (name, n_interp, n_traced))
    result = {
        "iterations": iters,
        "instructions": n_interp,
        "interp_instr_per_sec": round(n_interp / t_interp, 1),
        "trace_instr_per_sec": round(n_traced / t_traced, 1),
        "speedup": round(t_interp / t_traced, 3) if t_traced else 0.0,
    }
    if verbose:
        print("  %-11s %9d instr   interp %9.0f/s   "
              "traces %9.0f/s   %5.2fx"
              % (name, n_interp, result["interp_instr_per_sec"],
                 result["trace_instr_per_sec"], result["speedup"]),
              flush=True)
    return result


def merge_report(path, key, payload):
    """Read-modify-write ``path``: set ``key`` without disturbing any
    other benchmark's results already in the file."""
    doc = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (ValueError, OSError):
            doc = {}
    if not isinstance(doc, dict):
        doc = {}
    doc[key] = payload
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (shape check only)")
    args = parser.parse_args(argv)

    print("vm micro: interpreter vs trace engine "
          "(%d-instruction chunks)" % CHUNK, flush=True)
    results = {}
    for name, source, iters in WORKLOADS:
        if args.smoke:
            iters = max(10, iters // 100)
        results[name] = run_workload(name, source, iters)
    merge_report(args.out, "vm_micro",
                 {"benchmark": "bench_vm_micro",
                  "chunk_instructions": CHUNK,
                  "workloads": results})
    print("written to %s" % args.out, flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
