"""Ablation A2: dumpproc's one-second polling sleep.

Paper (section 6.2): "The large discrepancy between CPU and real time
can be explained by noting that the three files ... are created by
the process that is being dumped ... To avoid busy loops, dumpproc
simply sleeps for one second after each unsuccessful attempt."

Sweeping the sleep interval shows the real/CPU gap scales with it —
the gap is a property of the polling strategy, not of the mechanism.
"""

from repro.bench import ablation_polling_interval
from conftest import run_figure


def test_polling_interval(benchmark):
    result = run_figure(benchmark, ablation_polling_interval,
                        intervals=(0.1, 0.5, 1, 2))
    rows = result["rows"]
    reals = [row["real_us"] for row in rows]
    gaps = [row["gap"] for row in rows]
    # real time grows with the sleep interval ...
    assert reals == sorted(reals)
    assert reals[-1] > reals[0] + 1_000_000
    # ... while CPU stays flat, so the gap widens
    assert gaps[-1] > gaps[0] * 1.5
    cpus = [row["cpu_us"] for row in rows]
    assert max(cpus) < min(cpus) * 1.3
