"""Ablation A6: the section 9 future work, explored.

"Since our current implementation does not migrate processes that use
sockets, the next step in our research will be to examine whether
support for sockets can be added to our system."

The extension re-establishes *listening* endpoints on the destination
(the dump records the bound port; restart re-binds and re-listens).
Connected sockets still degrade to /dev/null — the genuinely hard
part stays unsolved, as the paper anticipated.
"""

from repro.bench import ext_socket_migration
from conftest import run_figure


def test_socket_migration(benchmark):
    result = run_figure(benchmark, ext_socket_migration)
    stock, extension = result["rows"]
    assert stock["service survives"] == "no"
    assert extension["service survives"] == "yes"
    # the outage is bounded by the dump+restart time (a second or two)
    assert extension["outage_us"] < 5_000_000
