"""Migration-latency storm: eager vs incremental vs lazy dumps.

A data-heavy guest (the section 6.2 counter carrying a 160 KB static
buffer it barely touches) ping-pongs between ``brick`` and
``schooner``.  Three dump/restart modes run the identical storm:

* **eager** — the baseline: every dump writes the whole image, every
  restart reads it back inside the freeze window;
* **incremental** — dumps write content-addressed chunks, so a
  re-migration pays only for pages dirtied since the last dump;
* **lazy** — incremental dumps plus copy-on-reference restart: only
  the text restores eagerly, data/stack chunks fault in on first
  touch *after* the process is running again.

**Freeze latency** is the span from the dump beginning on the source
to ``rest_proc`` completing on the destination — the window in which
the process exists nowhere.  It is measured from the trace timeline
(virtual time), so every mode runs on both engines and the report
asserts the clocks agree exactly.

The storm runs on a *fast-metadata* cost profile (creates and remove
RPCs at mid-90s speeds instead of the paper's 190-215 ms): with the
period-accurate metadata costs, three file creates plus three NFS
unlinks put ~1.2 s of identical fixed overhead inside every freeze
window, burying the data-path difference this benchmark measures.
Data transfer rates stay period-accurate.

Gates (CI runs ``--smoke``) compare *warm* hops — every hop after the
first, where the chunk store is already populated; the first hop is
the cold fill and is reported but not gated:

* incremental and lazy must never exceed eager's warm freeze latency;
* lazy must cut the warm freeze latency by at least 3x;
* in incremental mode the second dump of the storm must write at
  least 5x fewer chunk-store bytes than the first (the counter-only
  ``counter_dedup`` row asserts the same for the paper's unmodified
  section 6.2 program);
* fast and scan engines must agree on every virtual measurement.

Usage::

    PYTHONPATH=src python benchmarks/bench_migration_latency.py
        [--smoke] [--out BENCH_migration_latency.json]
        [--perf-report BENCH_perf.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                os.pardir, "src"))

from repro.core.api import MigrationSite
from repro.costmodel import CostModel

#: the big mostly-clean static buffer that makes restores expensive
BIG_BYTES = 160 * 1024
#: leader word per 1 KB chunk so every chunk digests differently
#: (an all-zero buffer would self-dedup inside the *first* dump)
CHUNK_STRIDE = 1024

DEFAULT_HOPS = 4
SMOKE_HOPS = 2

#: sub-second polling so fixed sleeps don't floor the latency figures
#: (dumpproc and migrate read these via sysctl at run time), plus
#: mid-90s metadata costs so the data path dominates the freeze window
POLL_KNOBS = dict(dump_poll_sleep_s=0.05, dump_poll_tries=200,
                  restart_poll_sleep_s=0.05, restart_poll_tries=200,
                  disk_create_us=5_000.0, nfs_meta_op_us=10_000.0)

MODES = (
    ("eager", dict()),
    ("incremental", dict(incremental_dumps=True)),
    ("lazy", dict(incremental_dumps=True, lazy_restart=True)),
)


def _big_counter_aout():
    from repro.programs.guest.counter import BODY, DATA
    from repro.programs.guest.libasm import program
    chunks = []
    for i in range(BIG_BYTES // CHUNK_STRIDE):
        chunks.append("big%d: .word %d" % (i, 0x5ABE0001 + i))
        chunks.append("        .space %d" % (CHUNK_STRIDE - 4))
    return program(BODY, DATA + "\n" + "\n".join(chunks) + "\n").aout


def _site(engine, overrides):
    costs = CostModel().with_overrides(**dict(POLL_KNOBS, **overrides))
    site = MigrationSite(costs, engine=engine)
    site.run_quiet()
    return site


def _freeze_spans(events):
    """Pair each dump begin with the next successful rest_proc end."""
    spans = []
    begin = None
    for event in events:
        if event["cat"] == "dump" and event.get("span") == "B":
            begin = event["ts"]
        elif (event["cat"] == "restart" and event["name"] == "rest_proc"
              and event.get("span") == "E" and event.get("ok")
              and begin is not None):
            spans.append(event["ts"] - begin)
            begin = None
    return spans


def run_storm(engine, overrides, hops, program="dcounter"):
    """Ping-pong one guest ``hops`` times; returns a result row."""
    site = _site(engine, overrides)
    if program == "dcounter":
        aout = _big_counter_aout()
        site.machine("brick").install_aout("dcounter", aout)
    site.cluster.tracer.enable("dump", "restart", "chunk")
    perf = site.cluster.perf

    handle = site.start("brick", "/bin/%s" % program, uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    pid, source = handle.pid, "brick"
    hop_bytes = []
    for hop in range(hops):
        destination = "schooner" if source == "brick" else "brick"
        before = perf.chunk_bytes_written
        mh = site.migrate(pid, source, destination,
                          typed_on=destination, uid=100)
        if mh.exit_status != 0:
            raise AssertionError("hop %d failed with %d"
                                 % (hop, mh.exit_status))
        moved = site.find_restarted(destination)
        if moved is None:
            raise AssertionError("hop %d: nothing restarted" % hop)
        hop_bytes.append(perf.chunk_bytes_written - before)
        pid, source = moved.pid, destination

    freezes = _freeze_spans(site.cluster.tracer.events)
    if len(freezes) != hops:
        raise AssertionError("expected %d freeze spans, got %d"
                             % (hops, len(freezes)))
    warm = freezes[1:] if len(freezes) > 1 else freezes
    return {
        "engine": engine,
        "hops": hops,
        "freeze_ms": [round(f / 1e3, 3) for f in freezes],
        "mean_freeze_ms": round(sum(freezes) / len(freezes) / 1e3, 3),
        "warm_freeze_ms": round(sum(warm) / len(warm) / 1e3, 3),
        "hop_chunk_bytes": hop_bytes,
        "chunk_bytes_written": perf.chunk_bytes_written,
        "chunks_clean_skipped": perf.chunks_clean_skipped,
        "lazy_faults": perf.lazy_faults,
        "wall_us": site.cluster.wall_time_us(),
    }


def run_mode(mode_name, overrides, hops, program="dcounter"):
    """One storm on both engines; asserts the virtual times agree."""
    fast = run_storm("fast", overrides, hops, program)
    scan = run_storm("scan", overrides, hops, program)
    virtual = ("wall_us", "freeze_ms", "hop_chunk_bytes",
               "lazy_faults", "chunks_clean_skipped")
    for key in virtual:
        if fast[key] != scan[key]:
            raise AssertionError(
                "%s: engines disagree on %s: %r vs %r"
                % (mode_name, key, fast[key], scan[key]))
    row = dict(fast)
    row["mode"] = mode_name
    del row["engine"]
    return row


def run_benchmark(hops=DEFAULT_HOPS, out="BENCH_migration_latency.json",
                  perf_report=None, verbose=True):
    def say(msg):
        if verbose:
            print(msg, flush=True)

    say("migration storm: %d hops of a counter carrying a %d KB "
        "buffer (virtual freeze = dump begin -> rest_proc end):"
        % (hops, BIG_BYTES // 1024))
    say("%12s  %16s  %16s  %14s  %12s"
        % ("mode", "mean freeze ms", "warm freeze ms",
           "chunk bytes", "lazy faults"))
    rows = []
    for mode_name, overrides in MODES:
        row = run_mode(mode_name, overrides, hops)
        rows.append(row)
        say("%12s  %16.1f  %16.1f  %14d  %12d"
            % (mode_name, row["mean_freeze_ms"], row["warm_freeze_ms"],
               row["chunk_bytes_written"], row["lazy_faults"]))

    by_mode = {row["mode"]: row for row in rows}
    eager = by_mode["eager"]["warm_freeze_ms"]
    for mode_name in ("incremental", "lazy"):
        warm = by_mode[mode_name]["warm_freeze_ms"]
        if warm > eager:
            raise AssertionError(
                "%s warm freeze %.1f ms exceeds eager's %.1f ms"
                % (mode_name, warm, eager))
    lazy = by_mode["lazy"]["warm_freeze_ms"]
    if lazy * 3 > eager:
        raise AssertionError(
            "lazy warm freeze %.1f ms is not 3x below eager's %.1f ms"
            % (lazy, eager))
    first, second = by_mode["incremental"]["hop_chunk_bytes"][:2]
    if second * 5 > first:
        raise AssertionError(
            "second dump wrote %d chunk bytes, first %d: less than "
            "the 5x dedup gate" % (second, first))
    say("gates: warm freeze(incremental) <= eager, "
        "warm freeze(lazy) <= eager/3, dedup >= 5x: all hold")

    # the paper's unmodified section 6.2 program, for the record:
    # an immediate re-migration re-writes (almost) no chunk bytes
    counter = run_mode("incremental", dict(incremental_dumps=True),
                       hops=2, program="counter")
    c_first, c_second = counter["hop_chunk_bytes"][:2]
    if c_second * 5 > c_first:
        raise AssertionError(
            "counter re-dump wrote %d chunk bytes vs %d: less than "
            "the 5x dedup gate" % (c_second, c_first))
    counter_row = {"program": "counter", "first_dump_bytes": c_first,
                   "second_dump_bytes": c_second,
                   "freeze_ms": counter["freeze_ms"]}
    say("counter dedup: first dump %d bytes, second %d bytes"
        % (c_first, c_second))

    report = {
        "benchmark": "bench_migration_latency",
        "big_buffer_bytes": BIG_BYTES,
        "engines_identical": True,
        "rows": rows,
        "counter_dedup": counter_row,
        "warm_lazy_freeze_speedup":
            round(eager / lazy, 2) if lazy else None,
    }
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    say("written to %s" % out)

    if perf_report and os.path.exists(perf_report):
        with open(perf_report) as fh:
            merged = json.load(fh)
        merged["migration_latency"] = {
            "rows": rows, "counter_dedup": counter_row,
            "warm_lazy_freeze_speedup":
                report["warm_lazy_freeze_speedup"],
        }
        with open(perf_report, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say("merged into %s" % perf_report)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_migration_latency.json")
    parser.add_argument("--perf-report", default=None,
                        help="existing BENCH_perf.json to merge the "
                             "latency rows into")
    parser.add_argument("--smoke", action="store_true",
                        help="fewer hops for CI")
    args = parser.parse_args(argv)
    hops = SMOKE_HOPS if args.smoke else DEFAULT_HOPS
    run_benchmark(hops=hops, out=args.out,
                  perf_report=args.perf_report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
