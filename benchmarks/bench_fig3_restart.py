"""Figure 3: execve() vs rest_proc() vs restart.

Paper: "rest_proc() takes only slightly longer than execve(), which
is entirely satisfactory.  The restart application takes
significantly longer (roughly five times more CPU time and six times
more real time) than execve()", with the execve anchor "less than 0.2
seconds, both in real and CPU time".
"""

from repro.bench import fig3
from conftest import run_figure


def test_fig3_restart(benchmark):
    result = run_figure(benchmark, fig3)
    rows = {row["case"]: row for row in result["rows"]}

    rest_proc = rows["rest_proc"]
    restart = rows["restart"]
    # rest_proc only slightly longer than execve
    assert 1.0 < rest_proc["measured_real"] < 1.6
    assert 1.0 < rest_proc["measured_cpu"] < 1.6
    # restart significantly longer: around 5-6x real time
    assert 3.5 < restart["measured_real"] < 8.0
    assert restart["measured_cpu"] > 4.0
    # the dotted line: rest_proc is a minority share of restart
    assert restart["rest_proc_share_real"] < 0.5
    # absolute anchor: exec of the test program < 0.2 s
    assert result["anchor_execve_real_s"] < 0.2
