"""Ablation A7: a 4.3BSD-style name cache under restart.

The paper's Sun 3.0 kernel derives from 4.2BSD; 4.3BSD (released the
year before the TR) introduced the namei cache.  restart's dominant
cost is "a large number of open() system calls" resolving the same
few names — the exact pattern the cache was built for.
"""

from repro.bench import ablation_namei_cache
from conftest import run_figure


def test_namei_cache_speeds_up_restart(benchmark):
    result = run_figure(benchmark, ablation_namei_cache)
    baseline, cached = result["rows"]
    # a real but bounded win: the cache removes the per-component
    # lookups, not the name-tracking or dispatch costs of each open
    assert cached["speedup_cpu"] > 1.08
    assert cached["restart_real_us"] < baseline["restart_real_us"]
