"""Ablation A5: the section 7 getpid()/gethostname() compatibility
extension.

Paper: "One solution ... is to add an extra field for an old process
id and maybe even an old host name in the user structure, and change
the getpid() and gethostname() system calls to return those new
fields if the process has been migrated."
"""

from repro.bench import ext_compat_ids
from conftest import run_figure


def test_compat_ids(benchmark):
    result = run_figure(benchmark, ext_compat_ids)
    stock, compat = result["rows"]
    assert stock["outcome"] == "LOST its temp file"
    assert compat["outcome"] == "survives"
